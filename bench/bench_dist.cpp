/// \file bench_dist.cpp
/// \brief Distributed planning tier vs the local sharded backend.
///
/// One multi-cluster platform, three series:
///   - sharded-local — the registry `sharded` planner with the local
///     thread pool (the tier's bit-identity reference);
///   - dist-inproc   — a Coordinator over the in-process transport (the
///     fallback tier: full wire round-trip, no subprocesses);
///   - dist-pipe     — a Coordinator over real `adept serve` subprocess
///     workers speaking JSON-lines over pipes;
///   - dist-socket   — a Coordinator over TCP sessions to one warm
///     `adept serve --listen` process (dist::ServeListener spawns it and
///     scrapes the announced ephemeral port).
///
/// Two streaming A/B sections measure the streamed stitch:
///   - dist-stream-ab   — end-to-end: the same socket coordinator with
///     shard responses streaming into the stitch as workers answer vs
///     the batch-collect barrier (--no-stream's path), best of 5 per
///     mode over 96 shards at stitch fanout 2 so recursive stitch
///     levels overlap leaf planning;
///   - dist-stream-tail — isolated: precomputed leaf plans delivered by
///     paced threads, measuring the *tail* — time from the last shard's
///     arrival to the final plan. Streaming has already folded every
///     earlier group when the last shard lands, so its tail is just the
///     stitch spine; batch pays the whole stitch there. The tail ratio
///     is the feature's latency win, free of socket/scheduler noise.
///
/// Reported per series: wall clock, predicted throughput, dispatch
/// overhead vs the local sharded run. Asserted (exit 1 on violation):
///   - all distributed series are bit-identical to sharded-local
///     (hierarchy, report and trace — ISSUE-6's acceptance contract);
///   - the healthy pipe and socket fleets answer every dispatched shard
///     themselves: no worker failures, fallbacks, or refused connects;
///   - streaming is bit-identical to batch collect and not slower
///     (streaming_speedup >= 0.8 — socket walls are noisy on shared
///     runners, so end-to-end only gates non-regression);
///   - the streamed stitch tail is >= 2x shorter than the batch tail
///     (tail_speedup, typically ~10x; gated in CI via bench_gate).
///
/// A chaos section then drives a *supervised* pipe fleet through a
/// kill-rate sweep (ISSUE-7's acceptance contract):
///   - dist-chaos-flap    — every worker answers one shard and dies; the
///     supervisor respawns between rounds, so the request is still
///     answered by workers (0 fallbacks) and stays bit-identical;
///   - dist-chaos-storm   — every worker (and every respawn) dies before
///     answering; the fallback answers bit-identically;
///   - dist-chaos-recovered — the storm ends, the heartbeat refills the
///     fleet, and throughput must recover to >= 0.9x the clean pipe run
///     (recovered_vs_clean, gated in CI).
/// All three must finish with zero client-visible failures.
///
///   ./bench_dist [--count N] [--workers N] [--seed N]
///                [--binary PATH] [--json BENCH_dist.json]
///
/// `--binary` points at the adept CLI for the pipe fleet; the default is
/// baked in at build time (the sibling `adept` target).

#include "bench_util.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include <unistd.h>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dist/coordinator.hpp"
#include "dist/stats.hpp"
#include "dist/supervisor.hpp"
#include "dist/transport.hpp"
#include "planner/planner.hpp"
#include "planner/sharded.hpp"
#include "platform/partition.hpp"

#ifndef ADEPT_CLI_BINARY
#define ADEPT_CLI_BINARY "adept"
#endif

namespace {

using namespace adept;

struct Measured {
  PlanResult plan;
  double wall_ms = 0.0;
};

template <typename Fn>
Measured timed(Fn&& fn) {
  Measured out;
  const auto start = std::chrono::steady_clock::now();
  out.plan = fn();
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return out;
}

bool identical(const PlanResult& a, const PlanResult& b) {
  return a.hierarchy == b.hierarchy &&
         a.report.overall == b.report.overall && a.trace == b.trace;
}

std::vector<std::string> shell(const std::string& script) {
  return {"bash", "-c", script};
}

/// One chaos phase: plan through a borrowed supervised fleet, timing the
/// run and counting client-visible failures (a thrown plan) instead of
/// letting one abort the sweep.
struct ChaosRun {
  Measured measured;
  bool failed = false;
  adept::dist::DistStats delta;  ///< Counter movement during the run.
};

ChaosRun chaos_plan(adept::dist::FleetSupervisor& fleet,
                    const adept::PlanRequest& request) {
  using adept::dist::stats_snapshot;
  ChaosRun out;
  const adept::dist::DistStats before = stats_snapshot();
  try {
    out.measured = timed([&] {
      adept::dist::Coordinator coordinator(fleet);
      return coordinator.plan(request);
    });
  } catch (const std::exception& e) {
    std::cerr << "chaos plan failed: " << e.what() << '\n';
    out.failed = true;
  }
  const adept::dist::DistStats after = stats_snapshot();
  out.delta.worker_failures = after.worker_failures - before.worker_failures;
  out.delta.fallbacks = after.fallbacks - before.fallbacks;
  out.delta.workers_respawned =
      after.workers_respawned - before.workers_respawned;
  out.delta.retried = after.retried - before.retried;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser(argv[0] ? argv[0] : "bench_dist",
                   "Distributed planning tier vs the local sharded backend.");
  parser.add_option("count", "multi-cluster platform node count", "2000");
  parser.add_option("workers", "fleet size for both distributed series", "4");
  parser.add_option("seed", "RNG seed for the synthetic platform", "20080615");
  parser.add_option("binary", "adept CLI binary for the pipe fleet",
                    ADEPT_CLI_BINARY);
  parser.add_option("json", "output path for the perf-trajectory JSON",
                    "BENCH_dist.json");
  try {
    parser.parse(std::vector<std::string>(argv + 1, argv + argc));
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n' << parser.usage();
    return 2;
  }
  const auto count = static_cast<std::size_t>(parser.get_int("count"));
  const auto workers = static_cast<std::size_t>(parser.get_int("workers"));
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));

  bench::banner("Distributed tier (coordinator + worker fleet) vs sharded");
  Rng rng(seed);
  const Platform platform = gen::grid5000_multi_cluster(count, rng);
  const ServiceSpec service = dgemm_service(310);
  const std::size_t shard_count = plat::partition_platform(platform, 0).size();
  ThreadPool pool;

  PlanOptions options;
  options.pool = &pool;
  const PlanRequest request{platform, bench::params(), service, options};

  const Measured local =
      timed([&] { return bench::run_planner("sharded", platform,
                                            bench::params(), service,
                                            options); });

  dist::CoordinatorConfig config;
  config.workers = workers;

  const Measured inproc = timed([&] {
    dist::InProcessTransport transport;
    dist::Coordinator coordinator(transport, config);
    return coordinator.plan(request);
  });

  const dist::DistStats before = dist::stats_snapshot();
  const Measured pipe = timed([&] {
    std::vector<std::string> argv_serve{parser.get("binary"), "serve",
                                        "--jobs", "1", "--cache", "0"};
    dist::PipeTransport transport(std::move(argv_serve));
    dist::Coordinator coordinator(transport, config);
    return coordinator.plan(request);
  });
  const dist::DistStats after = dist::stats_snapshot();
  const auto faults = (after.worker_failures - before.worker_failures) +
                      (after.fallbacks - before.fallbacks);
  const bool clean_pipe_run = faults == 0;

  // ---- socket fleet: one warm `serve --listen` process over TCP --------
  // The listener process starts (and is timed) outside the plan: the
  // point of the socket transport is that one warm process backs many
  // coordinators, so the measured run is connect + dispatch + stitch.
  dist::ServeListener listener({parser.get("binary"), "serve", "--listen",
                                "127.0.0.1:0", "--jobs",
                                std::to_string(workers), "--cache", "0"});
  const dist::DistStats socket_before = dist::stats_snapshot();
  const Measured socket = timed([&] {
    dist::SocketTransport transport({listener.endpoint()});
    dist::Coordinator coordinator(transport, config);
    return coordinator.plan(request);
  });
  const dist::DistStats socket_after = dist::stats_snapshot();
  const bool clean_socket_run =
      (socket_after.worker_failures - socket_before.worker_failures) +
          (socket_after.fallbacks - socket_before.fallbacks) +
          (socket_after.socket_connect_failures -
           socket_before.socket_connect_failures) ==
      0;

  // ---- streaming vs batch-collect stitch (A/B) -------------------------
  // Same coordinator, same fleet shape; the only difference is whether
  // shard responses stream into the stitch as workers answer or park
  // behind the batch barrier. Small fanout over many shards forces
  // recursive stitch levels — the work streaming overlaps with planning.
  // The fleet must be real subprocess workers: they plan in their own
  // process, so a drain thread stitching a completed group overlaps the
  // shards still being planned (the in-process transport plans *on* the
  // drain thread, which would serialize the two). The sessions reuse the
  // socket listener above — one warm process, many coordinators, which
  // also keeps worker startup out of the measurement. Best-of-3 per mode
  // damps scheduler noise on shared runners.
  dist::CoordinatorConfig ab_config = config;
  ab_config.workers = 4;
  ab_config.stitch_fanout = 2;
  PlanOptions ab_options = options;
  ab_options.shards = 96;
  const PlanRequest ab_request{platform, bench::params(), service, ab_options};
  Measured streamed;
  Measured batch;
  for (int round = 0; round < 5; ++round) {
    ab_config.streaming = true;
    const Measured stream_run = timed([&] {
      dist::SocketTransport transport({listener.endpoint()});
      dist::Coordinator coordinator(transport, ab_config);
      return coordinator.plan(ab_request);
    });
    if (round == 0 || stream_run.wall_ms < streamed.wall_ms)
      streamed = stream_run;
    ab_config.streaming = false;
    const Measured batch_run = timed([&] {
      dist::SocketTransport transport({listener.endpoint()});
      dist::Coordinator coordinator(transport, ab_config);
      return coordinator.plan(ab_request);
    });
    if (round == 0 || batch_run.wall_ms < batch.wall_ms) batch = batch_run;
  }
  const bool stream_identical = identical(streamed.plan, batch.plan);
  const double streaming_speedup =
      streamed.wall_ms > 0.0 ? batch.wall_ms / streamed.wall_ms : 0.0;

  // ---- streamed stitch tail: latency after the last shard arrives ------
  // The end-to-end A/B above is diluted by everything both modes share
  // (leaf planning, the wire, the scheduler). This section isolates what
  // streaming actually changes: by the time the last shard arrives, the
  // streamed stitch has already folded every completed group, so only
  // the spine (the groups the last shard closes) remains; the batch
  // barrier still owes the entire stitch. Leaf plans are precomputed
  // once and re-delivered by paced threads — a deterministic stand-in
  // for workers answering progressively — and the measured quantity is
  // the tail: last delivery to final plan.
  const std::size_t tail_shards = ab_options.shards;
  const std::size_t tail_fanout = ab_config.stitch_fanout;
  const plat::Partition tail_partition =
      plat::partition_platform(platform, tail_shards);
  std::vector<PlanResult> leaf_bank(tail_shards);
  plan_sharded_streamed(
      platform, bench::params(), service, options, tail_partition, tail_fanout,
      [&](const std::vector<std::vector<NodeId>>& leaves,
          const ShardResultSink& ready) {
        for (std::size_t s = 0; s < leaves.size(); ++s) {
          const Platform sub = platform.subset(leaves[s]);
          PlanResult plan = plan_heterogeneous(sub, bench::params(), service,
                                               options.demand, nullptr,
                                               &options);
          for (Hierarchy::Index e = 0; e < plan.hierarchy.size(); ++e)
            plan.hierarchy.replace_node(e,
                                        leaves[s][plan.hierarchy.node_of(e)]);
          leaf_bank[s] = plan;
          ready(s, std::move(plan));
        }
      });
  std::atomic<std::chrono::steady_clock::time_point> last_delivery{
      std::chrono::steady_clock::now()};
  const std::size_t delivery_threads = 4;
  const auto paced_deliver = [&](const ShardResultSink& ready) {
    std::vector<std::thread> deliverers;
    for (std::size_t t = 0; t < delivery_threads; ++t)
      deliverers.emplace_back([&, t] {
        for (std::size_t s = t; s < tail_shards; s += delivery_threads) {
          std::this_thread::sleep_for(std::chrono::microseconds(500));
          ready(s, PlanResult(leaf_bank[s]));
          last_delivery.store(std::chrono::steady_clock::now());
        }
      });
    for (std::thread& d : deliverers) d.join();
  };
  const auto tail_ms = [&last_delivery] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - last_delivery.load())
        .count();
  };
  double stream_tail_ms = 0.0;
  double batch_tail_ms = 0.0;
  PlanResult tail_stream_plan;
  PlanResult tail_batch_plan;
  for (int round = 0; round < 3; ++round) {
    tail_stream_plan = plan_sharded_streamed(
        platform, bench::params(), service, options, tail_partition,
        tail_fanout,
        [&](const std::vector<std::vector<NodeId>>&,
            const ShardResultSink& ready) { paced_deliver(ready); });
    const double stream_round = tail_ms();
    tail_batch_plan = plan_sharded_with(
        platform, bench::params(), service, options, tail_partition,
        tail_fanout, [&](const std::vector<std::vector<NodeId>>& leaves) {
          std::vector<PlanResult> plans(leaves.size());
          paced_deliver(
              [&plans](std::size_t s, PlanResult p) { plans[s] = std::move(p); });
          return plans;
        });
    const double batch_round = tail_ms();
    if (round == 0 || stream_round < stream_tail_ms)
      stream_tail_ms = stream_round;
    if (round == 0 || batch_round < batch_tail_ms)
      batch_tail_ms = batch_round;
  }
  const bool tail_identical = identical(tail_stream_plan, tail_batch_plan) &&
                              identical(tail_stream_plan, streamed.plan);
  const double tail_speedup =
      stream_tail_ms > 0.0 ? batch_tail_ms / stream_tail_ms : 0.0;

  // ---- chaos: supervised fleet under a kill-rate sweep ------------------
  const std::string worker_cmd =
      parser.get("binary") + " serve --jobs 1 --cache 0";
  const std::string sentinel =
      (std::filesystem::temp_directory_path() /
       ("adept_bench_storm_" + std::to_string(::getpid())))
          .string();

  dist::SupervisorConfig chaos_config;
  chaos_config.workers = workers;
  chaos_config.pool.respawn_backoff_ms = 0.0;
  chaos_config.pool.max_retries = 64;

  // Flap: every worker answers exactly one shard and dies; each round
  // makes progress and the supervisor refills the fleet between rounds.
  dist::PipeTransport flap_transport(shell("head -n 1 | exec " + worker_cmd));
  ChaosRun flap;
  {
    dist::FleetSupervisor fleet(flap_transport, chaos_config);
    flap = chaos_plan(fleet, request);
  }

  // Storm + recovery: workers crash on first contact while the sentinel
  // exists, and are genuine serve workers once it is gone.
  std::ofstream(sentinel) << "storm\n";
  dist::PipeTransport storm_transport(shell(
      "if [ -e '" + sentinel + "' ]; then read -r _line; exit 1; else exec " +
      worker_cmd + "; fi"));
  ChaosRun storm;
  ChaosRun recovered;
  {
    dist::SupervisorConfig storm_config = chaos_config;
    storm_config.pool.max_retries = 1;  // fall back fast under a full storm
    dist::FleetSupervisor fleet(storm_transport, storm_config);
    storm = chaos_plan(fleet, request);
    std::filesystem::remove(sentinel);
    fleet.heartbeat();  // refill the fleet before timing the recovery
    recovered = chaos_plan(fleet, request);
    // Best-of-two on the warm fleet damps scheduler noise on shared
    // runners; identity is still checked on the first recovered plan.
    const ChaosRun again = chaos_plan(fleet, request);
    if (!recovered.failed && !again.failed &&
        again.measured.wall_ms < recovered.measured.wall_ms)
      recovered.measured.wall_ms = again.measured.wall_ms;
  }

  const bool flap_identical =
      !flap.failed && identical(local.plan, flap.measured.plan);
  const bool storm_identical =
      !storm.failed && identical(local.plan, storm.measured.plan);
  const bool recovered_identical =
      !recovered.failed && identical(local.plan, recovered.measured.plan);
  const bool chaos_zero_failures =
      !flap.failed && !storm.failed && !recovered.failed;
  const bool flap_answered_by_workers = flap.delta.fallbacks == 0;
  const bool recovered_clean =
      recovered.delta.worker_failures == 0 && recovered.delta.fallbacks == 0;
  const double recovered_vs_clean =
      recovered.measured.wall_ms > 0.0
          ? pipe.wall_ms / recovered.measured.wall_ms
          : 0.0;

  const bool inproc_identical = identical(local.plan, inproc.plan);
  const bool pipe_identical = identical(local.plan, pipe.plan);
  const bool socket_identical = identical(local.plan, socket.plan);
  const double inproc_overhead =
      local.wall_ms > 0.0 ? inproc.wall_ms / local.wall_ms : 0.0;
  const double pipe_overhead =
      local.wall_ms > 0.0 ? pipe.wall_ms / local.wall_ms : 0.0;
  const double socket_overhead =
      local.wall_ms > 0.0 ? socket.wall_ms / local.wall_ms : 0.0;

  Table table("sharded (local pool) vs distributed fleets, " +
              std::to_string(shard_count) + " shards, dgemm-310, " +
              std::to_string(workers) + " workers");
  table.set_header({"series", "wall ms", "rho (req/s)", "nodes",
                    "overhead", "identical"});
  table.add_row({"sharded-local", Table::num(local.wall_ms, 1),
                 Table::num(local.plan.report.overall, 2),
                 Table::num(static_cast<long long>(local.plan.nodes_used())),
                 "-", "-"});
  table.add_row({"dist-inproc", Table::num(inproc.wall_ms, 1),
                 Table::num(inproc.plan.report.overall, 2),
                 Table::num(static_cast<long long>(inproc.plan.nodes_used())),
                 Table::num(inproc_overhead, 2) + "x",
                 inproc_identical ? "yes" : "NO"});
  table.add_row({"dist-pipe", Table::num(pipe.wall_ms, 1),
                 Table::num(pipe.plan.report.overall, 2),
                 Table::num(static_cast<long long>(pipe.plan.nodes_used())),
                 Table::num(pipe_overhead, 2) + "x",
                 pipe_identical ? "yes" : "NO"});
  table.add_row({"dist-socket", Table::num(socket.wall_ms, 1),
                 Table::num(socket.plan.report.overall, 2),
                 Table::num(static_cast<long long>(socket.plan.nodes_used())),
                 Table::num(socket_overhead, 2) + "x",
                 socket_identical ? "yes" : "NO"});
  std::cout << table << '\n';

  Table stream_table("streaming vs batch-collect stitch, " +
                     std::to_string(ab_options.shards) + " shards, fanout " +
                     std::to_string(ab_config.stitch_fanout) + ", " +
                     std::to_string(ab_config.workers) +
                     " socket sessions (best of 5)");
  stream_table.set_header({"mode", "wall ms", "speedup", "identical"});
  stream_table.add_row({"batch-collect", Table::num(batch.wall_ms, 1), "-",
                        "-"});
  stream_table.add_row({"streaming", Table::num(streamed.wall_ms, 1),
                        Table::num(streaming_speedup, 2) + "x",
                        stream_identical ? "yes" : "NO"});
  std::cout << stream_table << '\n';

  Table tail_table("stitch tail after the last shard arrives, " +
                   std::to_string(tail_shards) + " shards, fanout " +
                   std::to_string(tail_fanout) +
                   ", paced delivery (best of 3)");
  tail_table.set_header({"mode", "tail ms", "speedup", "identical"});
  tail_table.add_row({"batch-collect", Table::num(batch_tail_ms, 2), "-",
                      "-"});
  tail_table.add_row({"streaming", Table::num(stream_tail_ms, 2),
                      Table::num(tail_speedup, 1) + "x",
                      tail_identical ? "yes" : "NO"});
  std::cout << tail_table << '\n';

  Table chaos_table("supervised fleet under kill storms, " +
                    std::to_string(workers) + " workers (chaos sweep)");
  chaos_table.set_header({"phase", "wall ms", "respawned", "fallbacks",
                          "failed reqs", "identical"});
  const auto chaos_row = [&chaos_table](const std::string& name,
                                        const ChaosRun& run, bool same) {
    chaos_table.add_row(
        {name, Table::num(run.measured.wall_ms, 1),
         Table::num(static_cast<long long>(run.delta.workers_respawned)),
         Table::num(static_cast<long long>(run.delta.fallbacks)),
         run.failed ? "1" : "0", same ? "yes" : "NO"});
  };
  chaos_row("flap (die per shard)", flap, flap_identical);
  chaos_row("storm (all crash)", storm, storm_identical);
  chaos_row("recovered", recovered, recovered_identical);
  std::cout << chaos_table << '\n';

  bench::JsonBenchWriter json("dist");
  json.add({"sharded-local", count, local.wall_ms, 0,
            local.plan.report.overall,
            {{"shards", static_cast<double>(shard_count)}}});
  // efficiency = local/dist wall ratio: higher is better, which is the
  // direction tools/bench_gate.py's --metric checks gate on.
  json.add({"dist-inproc", count, inproc.wall_ms, 0,
            inproc.plan.report.overall,
            {{"overhead_vs_sharded", inproc_overhead},
             {"efficiency_vs_sharded",
              inproc_overhead > 0.0 ? 1.0 / inproc_overhead : 0.0},
             {"workers", static_cast<double>(workers)},
             {"bit_identical", inproc_identical ? 1.0 : 0.0}}});
  json.add({"dist-pipe", count, pipe.wall_ms, 0, pipe.plan.report.overall,
            {{"overhead_vs_sharded", pipe_overhead},
             {"efficiency_vs_sharded",
              pipe_overhead > 0.0 ? 1.0 / pipe_overhead : 0.0},
             {"workers", static_cast<double>(workers)},
             {"bit_identical", pipe_identical ? 1.0 : 0.0},
             {"clean_run", clean_pipe_run ? 1.0 : 0.0}}});
  json.add({"dist-socket", count, socket.wall_ms, 0,
            socket.plan.report.overall,
            {{"overhead_vs_sharded", socket_overhead},
             {"efficiency_vs_sharded",
              socket_overhead > 0.0 ? 1.0 / socket_overhead : 0.0},
             {"workers", static_cast<double>(workers)},
             {"bit_identical", socket_identical ? 1.0 : 0.0},
             {"clean_run", clean_socket_run ? 1.0 : 0.0},
             {"socket_connects",
              static_cast<double>(socket_after.socket_connects -
                                  socket_before.socket_connects)}}});
  json.add({"dist-stream-ab", count, streamed.wall_ms, 0,
            streamed.plan.report.overall,
            {{"streaming_speedup", streaming_speedup},
             {"batch_wall_ms", batch.wall_ms},
             {"bit_identical", stream_identical ? 1.0 : 0.0}}});
  json.add({"dist-stream-tail", count, stream_tail_ms, 0,
            tail_stream_plan.report.overall,
            {{"tail_speedup", tail_speedup},
             {"batch_tail_ms", batch_tail_ms},
             {"bit_identical", tail_identical ? 1.0 : 0.0}}});
  json.add({"dist-chaos-flap", count, flap.measured.wall_ms, 0,
            flap.measured.plan.report.overall,
            {{"bit_identical", flap_identical ? 1.0 : 0.0},
             {"zero_failures", flap.failed ? 0.0 : 1.0},
             {"respawned", static_cast<double>(flap.delta.workers_respawned)},
             {"fallbacks", static_cast<double>(flap.delta.fallbacks)},
             {"answered_by_workers", flap_answered_by_workers ? 1.0 : 0.0}}});
  json.add({"dist-chaos-storm", count, storm.measured.wall_ms, 0,
            storm.measured.plan.report.overall,
            {{"bit_identical", storm_identical ? 1.0 : 0.0},
             {"zero_failures", storm.failed ? 0.0 : 1.0},
             {"respawned",
              static_cast<double>(storm.delta.workers_respawned)},
             {"fallbacks", static_cast<double>(storm.delta.fallbacks)}}});
  json.add({"dist-chaos-recovered", count, recovered.measured.wall_ms, 0,
            recovered.measured.plan.report.overall,
            {{"recovered_vs_clean", recovered_vs_clean},
             {"bit_identical", recovered_identical ? 1.0 : 0.0},
             {"zero_failures", recovered.failed ? 0.0 : 1.0},
             {"clean_run", recovered_clean ? 1.0 : 0.0}}});

  bench::verdict("in-process fleet bit-identical to local sharded",
                 inproc_identical);
  bench::verdict("pipe fleet (real serve subprocesses) bit-identical to "
                 "local sharded",
                 pipe_identical);
  bench::verdict("healthy pipe fleet answered every shard itself "
                 "(0 failures, 0 fallbacks; got " +
                     std::to_string(faults) + ")",
                 clean_pipe_run);
  bench::verdict("socket fleet (serve --listen over TCP) bit-identical to "
                 "local sharded",
                 socket_identical);
  bench::verdict("socket fleet ran clean (0 failures, fallbacks, refused "
                 "connects)",
                 clean_socket_run);
  bench::verdict("streaming stitch bit-identical to batch collect and not "
                 "slower (got " +
                     Table::num(streaming_speedup, 2) + "x)",
                 stream_identical && streaming_speedup >= 0.8);
  bench::verdict("streamed stitch tail >= 2x shorter than the batch tail "
                 "(got " +
                     Table::num(tail_speedup, 1) + "x)",
                 tail_identical && tail_speedup >= 2.0);
  bench::verdict("chaos sweep: zero client-visible failures",
                 chaos_zero_failures);
  bench::verdict("flap phase answered by respawned workers, never the "
                 "fallback",
                 flap_identical && flap_answered_by_workers);
  bench::verdict("storm phase fell back bit-identically", storm_identical);
  bench::verdict("recovered fleet bit-identical with no new faults and "
                 "throughput >= 0.9x clean (got " +
                     Table::num(recovered_vs_clean, 2) + "x)",
                 recovered_identical && recovered_clean &&
                     recovered_vs_clean >= 0.9);

  json.write(parser.get("json"));
  const bool ok = inproc_identical && pipe_identical && clean_pipe_run &&
                  socket_identical && clean_socket_run && stream_identical &&
                  streaming_speedup >= 0.8 && tail_identical &&
                  tail_speedup >= 2.0 && chaos_zero_failures &&
                  flap_identical && flap_answered_by_workers &&
                  storm_identical && recovered_identical && recovered_clean &&
                  recovered_vs_clean >= 0.9;
  return ok ? 0 : 1;
}
