/// \file test_extensions.cpp
/// \brief Tests for the paper's future-work extensions implemented in
/// ADePT: heterogeneous communication (per-node links), multi-service
/// workload mixes, the link-aware planner refinement, and statistical
/// execution-time forecasting.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "model/hetero_comm.hpp"
#include "model/mix.hpp"
#include "planner/planner.hpp"
#include "platform/generator.hpp"
#include "platform/io.hpp"
#include "sim/simulator.hpp"
#include "workload/forecast.hpp"

namespace adept {
namespace {

const MiddlewareParams kParams = MiddlewareParams::diet_grid5000();
constexpr MbitRate kB = 1000.0;

Hierarchy star(std::size_t servers) {
  Hierarchy h;
  const auto root = h.add_root(0);
  for (NodeId id = 1; id <= servers; ++id) h.add_server(root, id);
  return h;
}

sim::SimConfig quick() {
  sim::SimConfig config;
  config.warmup = 0.5;
  config.measure = 2.0;
  return config;
}

// --------------------------------------------------- per-node links (platform)

TEST(Links, DefaultIsHomogeneous) {
  const Platform platform = gen::homogeneous(4, 1000.0, kB);
  EXPECT_TRUE(platform.has_homogeneous_links());
  EXPECT_DOUBLE_EQ(platform.link_bandwidth(0), kB);
  EXPECT_DOUBLE_EQ(platform.edge_bandwidth(0, 1), kB);
}

TEST(Links, SetLinkOverridesAndEdgeIsMin) {
  Platform platform = gen::homogeneous(4, 1000.0, kB);
  platform.set_link(1, 100.0);
  EXPECT_FALSE(platform.has_homogeneous_links());
  EXPECT_DOUBLE_EQ(platform.link_bandwidth(1), 100.0);
  EXPECT_DOUBLE_EQ(platform.link_bandwidth(2), kB);
  EXPECT_DOUBLE_EQ(platform.edge_bandwidth(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(platform.edge_bandwidth(1, 2), 100.0);
  EXPECT_DOUBLE_EQ(platform.edge_bandwidth(0, 2), kB);
  EXPECT_THROW(platform.set_link(0, -1.0), Error);
  EXPECT_THROW(platform.set_link(99, 10.0), Error);
}

TEST(Links, GeneratorDrawsWithinRange) {
  Rng rng(4);
  const Platform platform = gen::with_heterogeneous_links(
      gen::homogeneous(30, 1000.0, kB), 10.0, 100.0, rng);
  EXPECT_FALSE(platform.has_homogeneous_links());
  for (NodeId id = 0; id < platform.size(); ++id) {
    EXPECT_GE(platform.link_bandwidth(id), 10.0);
    EXPECT_LT(platform.link_bandwidth(id), 100.0);
  }
}

TEST(Links, PlatformFileRoundTripsLinkColumn) {
  Platform platform = gen::homogeneous(3, 500.0, kB);
  platform.set_link(1, 128.0);
  const Platform parsed = io::parse_platform(io::serialize_platform(platform));
  EXPECT_DOUBLE_EQ(parsed.link_bandwidth(1), 128.0);
  EXPECT_DOUBLE_EQ(parsed.link_bandwidth(0), kB);
  // Explicit parse of the 4-column form.
  const Platform manual =
      io::parse_platform("bandwidth 1000\nnode a 500 64\nnode b 500\n");
  EXPECT_DOUBLE_EQ(manual.link_bandwidth(0), 64.0);
  EXPECT_THROW(io::parse_platform("bandwidth 10\nnode a 500 -2\n"), Error);
}

// ------------------------------------------------- hetero-comm model (Eq 14/15)

TEST(HeteroModel, ReducesToPaperModelOnHomogeneousLinks) {
  const Platform platform = gen::homogeneous(6, 800.0, kB);
  Hierarchy h;
  const auto root = h.add_root(0);
  const auto la = h.add_agent(root, 1);
  h.add_server(la, 2);
  h.add_server(la, 3);
  h.add_server(root, 4);
  const ServiceSpec service = dgemm_service(310);
  const auto base = model::evaluate(h, platform, kParams, service);
  const auto hetero = model::evaluate_hetero(h, platform, kParams, service);
  EXPECT_NEAR(hetero.sched, base.sched, 1e-9 * base.sched);
  EXPECT_NEAR(hetero.service, base.service, 1e-9 * base.service);
  EXPECT_NEAR(hetero.overall, base.overall, 1e-9 * base.overall);
  EXPECT_EQ(hetero.bottleneck, base.bottleneck);
}

TEST(HeteroModel, SlowAgentLinkLowersSchedOnly) {
  Platform platform = gen::homogeneous(4, 1000.0, kB);
  const Hierarchy h = star(3);
  const ServiceSpec service = dgemm_service(10);
  const auto before = model::evaluate_hetero(h, platform, kParams, service);
  platform.set_link(0, 10.0);  // throttle the agent's link
  const auto after = model::evaluate_hetero(h, platform, kParams, service);
  EXPECT_LT(after.sched, before.sched);
}

TEST(HeteroModel, SlowServerLinkLowersServiceTerm) {
  Platform platform = gen::homogeneous(3, 1000.0, kB);
  const Hierarchy h = star(2);
  const ServiceSpec service = dgemm_service(310);
  const auto before = model::evaluate_hetero(h, platform, kParams, service);
  platform.set_link(1, 0.01);  // server behind a dial-up link
  const auto after = model::evaluate_hetero(h, platform, kParams, service);
  EXPECT_LT(after.service, before.service);
}

TEST(HeteroModel, AgentTermUsesNarrowestChildEdge) {
  // Two identical stars, one with a throttled *child*: the agent pays the
  // child's slow edge on both directions of the broadcast.
  Platform fast = gen::homogeneous(3, 1000.0, kB);
  Platform slow = fast;
  slow.set_link(2, 1.0);
  const Hierarchy h = star(2);
  const auto rate_fast =
      model::agent_sched_throughput_hetero(h, fast, kParams, 0);
  const auto rate_slow =
      model::agent_sched_throughput_hetero(h, slow, kParams, 0);
  EXPECT_LT(rate_slow, rate_fast);
}

// --------------------------------------------------------- simulator + links

TEST(HeteroSim, ThrottledAgentLinkLowersMeasuredThroughput) {
  Platform fast = gen::homogeneous(3, 1000.0, kB);
  Platform slow = fast;
  slow.set_link(0, 5.0);  // the agent's messages crawl
  const Hierarchy h = star(2);
  const ServiceSpec service = dgemm_service(10);
  const auto run_fast = sim::simulate(h, fast, kParams, service, 30, quick());
  const auto run_slow = sim::simulate(h, slow, kParams, service, 30, quick());
  EXPECT_LT(run_slow.throughput, 0.6 * run_fast.throughput);
}

TEST(HeteroSim, SimFollowsHeteroModelOrdering) {
  // Plan A keeps the well-connected node as agent, plan B the throttled
  // one; the hetero model and the simulator must agree on the winner.
  Platform platform = gen::homogeneous(4, 1000.0, kB);
  platform.set_link(0, 20.0);
  Hierarchy bad = star(3);  // agent on throttled node 0
  Hierarchy good;           // agent on healthy node 1
  const auto root = good.add_root(1);
  good.add_server(root, 0);
  good.add_server(root, 2);
  good.add_server(root, 3);
  const ServiceSpec service = dgemm_service(100);
  const auto model_bad = model::evaluate_hetero(bad, platform, kParams, service);
  const auto model_good =
      model::evaluate_hetero(good, platform, kParams, service);
  ASSERT_GT(model_good.overall, model_bad.overall);
  const auto sim_bad = sim::simulate(bad, platform, kParams, service, 30, quick());
  const auto sim_good =
      sim::simulate(good, platform, kParams, service, 30, quick());
  EXPECT_GT(sim_good.throughput, sim_bad.throughput);
}

// -------------------------------------------------------- link-aware planner

TEST(LinkAwarePlanner, MatchesHeuristicOnHomogeneousLinks) {
  const Platform platform = gen::homogeneous(12, 1000.0, kB);
  const ServiceSpec service = dgemm_service(310);
  const auto base = plan_heterogeneous(platform, kParams, service);
  const auto aware = plan_link_aware(platform, kParams, service);
  EXPECT_EQ(aware.hierarchy, base.hierarchy);
}

TEST(LinkAwarePlanner, MovesAgentOffThrottledNode) {
  // Strongest node (the heuristic's root pick for a small grain) is
  // behind a slow link; the refinement must move the root elsewhere.
  Platform platform({{"big-slow", 2000.0},
                     {"mid-1", 1000.0},
                     {"mid-2", 1000.0},
                     {"mid-3", 1000.0},
                     {"mid-4", 1000.0}},
                    kB);
  platform.set_link(0, 5.0);
  const ServiceSpec service = dgemm_service(100);
  const auto base = plan_heterogeneous(platform, kParams, service);
  const auto aware = plan_link_aware(platform, kParams, service);
  const auto base_hetero =
      model::evaluate_hetero(base.hierarchy, platform, kParams, service);
  EXPECT_GT(aware.report.overall, base_hetero.overall);
  // Node 0 can serve neither as the root (its messages crawl) nor as a
  // server (every broadcast would pay its edge): the refinement must have
  // moved the root off it, or dropped it from the deployment entirely.
  EXPECT_NE(aware.hierarchy.node_of(aware.hierarchy.root()), 0u);
  const auto used = aware.hierarchy.used_nodes();
  EXPECT_EQ(std::count(used.begin(), used.end(), 0u), 0);
}

TEST(LinkAwarePlanner, NeverWorseThanUnrefinedUnderHeteroModel) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const Platform platform = gen::with_heterogeneous_links(
        gen::uniform(16, 200.0, 1200.0, kB, rng), 50.0, 1000.0, rng);
    const ServiceSpec service = dgemm_service(310);
    const auto base = plan_heterogeneous(platform, kParams, service);
    const auto aware = plan_link_aware(platform, kParams, service);
    const auto base_hetero =
        model::evaluate_hetero(base.hierarchy, platform, kParams, service);
    EXPECT_GE(aware.report.overall, base_hetero.overall * (1.0 - 1e-12))
        << "seed " << seed;
    EXPECT_TRUE(aware.hierarchy.validate(&platform).empty());
  }
}

// ------------------------------------------------------------- service mixes

TEST(ServiceMix, FractionsAndExpectation) {
  const ServiceMix mix({{dgemm_service(100), 3.0}, {dgemm_service(310), 1.0}});
  EXPECT_EQ(mix.size(), 2u);
  EXPECT_NEAR(mix.fraction(0), 0.75, 1e-12);
  EXPECT_NEAR(mix.fraction(1), 0.25, 1e-12);
  EXPECT_NEAR(mix.expected_wapp(),
              0.75 * dgemm_mflop(100) + 0.25 * dgemm_mflop(310), 1e-12);
  EXPECT_EQ(mix.expected_service().name, "mix");
}

TEST(ServiceMix, RejectsBadInput) {
  EXPECT_THROW(ServiceMix(std::vector<std::pair<ServiceSpec, double>>{}), Error);
  EXPECT_THROW(ServiceMix({{dgemm_service(10), 0.0}}), Error);
  EXPECT_THROW(ServiceMix({{ServiceSpec{"zero", 0.0}, 1.0}}), Error);
}

TEST(ServiceMix, SimulatorDrawsTheRequestedProportions) {
  const Platform platform = gen::homogeneous(5, 1000.0, kB);
  const ServiceMix mix({{dgemm_service(100), 4.0}, {dgemm_service(310), 1.0}});
  const auto run =
      sim::simulate_mix(star(4), platform, kParams, mix, 20, quick());
  ASSERT_EQ(run.completions_per_service.size(), 2u);
  const double total = static_cast<double>(run.completions_per_service[0] +
                                           run.completions_per_service[1]);
  ASSERT_GT(total, 100.0);
  EXPECT_NEAR(static_cast<double>(run.completions_per_service[0]) / total, 0.8,
              0.08);
}

TEST(ServiceMix, MixThroughputMatchesExpectedServiceModel) {
  // Service-limited star: the measured mix throughput must approach the
  // analytic prediction computed with E[W_app].
  const Platform platform = gen::homogeneous(4, 1000.0, kB);
  const ServiceMix mix({{dgemm_service(200), 1.0}, {dgemm_service(310), 1.0}});
  const Hierarchy h = star(3);
  const auto predicted =
      model::evaluate(h, platform, kParams, mix.expected_service());
  sim::SimConfig config = quick();
  config.warmup = 2.0;
  config.measure = 6.0;
  const auto run = sim::simulate_mix(h, platform, kParams, mix, 40, config);
  EXPECT_NEAR(run.throughput, predicted.overall, 0.12 * predicted.overall);
}

TEST(ServiceMix, PlannerSizesForTheExpectedGrain) {
  const Platform platform = gen::homogeneous(30, 1000.0, kB);
  const ServiceMix mix({{dgemm_service(100), 1.0}, {dgemm_service(1000), 1.0}});
  const auto plan =
      plan_heterogeneous(platform, kParams, mix.expected_service());
  EXPECT_TRUE(plan.hierarchy.validate(&platform).empty());
  // E[W_app] ≈ 1001 MFlop: decidedly service-limited, so the plan commits
  // many servers.
  EXPECT_GT(plan.hierarchy.server_count(), 20u);
}

// ---------------------------------------------------------------- forecaster

TEST(Forecast, RecoversWappFromCleanSamples) {
  std::vector<sim::ServiceSample> samples;
  const MFlop wapp = 59.582;  // dgemm-310
  for (double power : {400.0, 700.0, 1000.0, 1300.0})
    for (int rep = 0; rep < 3; ++rep)
      samples.push_back({0, power, wapp / power + 2.5e-4});
  const auto estimate = workload::estimate_wapp(samples);
  EXPECT_NEAR(estimate.wapp, wapp, 1e-6);
  EXPECT_NEAR(estimate.overhead, 2.5e-4, 1e-9);
  EXPECT_GT(estimate.correlation, 0.999);
  EXPECT_EQ(estimate.samples, 12u);
}

TEST(Forecast, FiltersByServiceIndex) {
  std::vector<sim::ServiceSample> samples;
  for (double power : {500.0, 1000.0}) {
    samples.push_back({0, power, 2.0 / power});
    samples.push_back({1, power, 2000.0 / power});
  }
  EXPECT_NEAR(workload::estimate_wapp(samples, 0).wapp, 2.0, 1e-9);
  EXPECT_NEAR(workload::estimate_wapp(samples, 1).wapp, 2000.0, 1e-6);
}

TEST(Forecast, RejectsDegenerateSamples) {
  std::vector<sim::ServiceSample> one{{0, 1000.0, 0.1}};
  EXPECT_THROW(workload::estimate_wapp(one), Error);
  std::vector<sim::ServiceSample> same_power{{0, 1000.0, 0.1},
                                             {0, 1000.0, 0.11}};
  EXPECT_THROW(workload::estimate_wapp(same_power), Error);
}

TEST(Forecast, EstimatesFromRealSimulatorSamples) {
  // End to end: run the simulator on heterogeneous servers and recover
  // W_app of DGEMM 310 from the observed executions.
  Platform platform({{"agent", 1500.0},
                     {"s1", 400.0},
                     {"s2", 800.0},
                     {"s3", 1200.0}},
                    kB);
  const ServiceSpec service = dgemm_service(310);
  const auto run = sim::simulate(star(3), platform, kParams, service, 12, quick());
  ASSERT_GE(run.service_samples.size(), 10u);
  const auto estimate = workload::estimate_wapp(run.service_samples);
  EXPECT_NEAR(estimate.wapp, service.wapp, 0.10 * service.wapp);
}

TEST(Forecast, DgemmLawExtrapolates) {
  const std::vector<double> orders{100.0, 200.0, 310.0};
  std::vector<MFlop> wapps;
  for (double n : orders) wapps.push_back(2e-6 * n * n * n * 1.01);  // 1% noise
  const auto law = workload::fit_dgemm_law(orders, wapps);
  EXPECT_NEAR(law.coefficient, 2e-6, 0.05e-6);
  const auto predicted = law.predict(1000);
  EXPECT_NEAR(predicted.wapp, dgemm_mflop(1000), 0.05 * dgemm_mflop(1000));
  EXPECT_THROW(workload::fit_dgemm_law({}, {}), Error);
}

}  // namespace
}  // namespace adept
