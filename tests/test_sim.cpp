/// \file test_sim.cpp
/// \brief Tests for the discrete-event simulator: event queue ordering,
/// conservation laws, saturation behaviour, and agreement with the
/// analytic model in the regimes where they must coincide.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "model/evaluate.hpp"
#include "platform/generator.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace adept {
namespace {

const MiddlewareParams kParams = MiddlewareParams::diet_grid5000();
constexpr MbitRate kB = 1000.0;

Hierarchy star(std::size_t servers) {
  Hierarchy h;
  const auto root = h.add_root(0);
  for (NodeId id = 1; id <= servers; ++id) h.add_server(root, id);
  return h;
}

/// Ideal conditions: no latency, no middleware overhead — the simulator
/// should then reproduce the analytic model closely.
sim::SimConfig ideal() {
  sim::SimConfig config;
  config.message_latency = 0.0;
  config.agent_compute_overhead = 0.0;
  config.server_compute_overhead = 0.0;
  config.warmup = 1.0;
  config.measure = 4.0;
  return config;
}

/// Short realistic-config runs for functional tests.
sim::SimConfig quick() {
  sim::SimConfig config;
  config.warmup = 0.5;
  config.measure = 2.0;
  return config;
}

// ------------------------------------------------------------ event queue --

TEST(EventQueue, FiresInTimeOrder) {
  sim::EventQueue queue;
  std::vector<int> order;
  queue.schedule(2.0, [&] { order.push_back(2); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(3.0, [&] { order.push_back(3); });
  while (!queue.empty()) queue.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireFifo) {
  sim::EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) queue.schedule(1.0, [&, i] { order.push_back(i); });
  while (!queue.empty()) queue.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  sim::EventQueue queue;
  int fired = 0;
  queue.schedule(1.0, [&] {
    ++fired;
    queue.schedule(2.0, [&] { ++fired; });
  });
  while (!queue.empty()) queue.run_next();
  EXPECT_EQ(fired, 2);
}

// ----------------------------------------------------------- basic runs --

TEST(Simulator, CompletesRequestsAndConserves) {
  const Platform platform = gen::homogeneous(3, 1000.0, kB);
  const auto result =
      sim::simulate(star(2), platform, kParams, dgemm_service(100), 4, quick());
  EXPECT_GT(result.completed, 0u);
  EXPECT_LE(result.completed, result.issued);
  EXPECT_GE(result.completed_in_window, 1u);
  EXPECT_GT(result.throughput, 0.0);
  EXPECT_GT(result.mean_response_time, 0.0);
  EXPECT_LE(result.mean_response_time, result.max_response_time);
}

TEST(Simulator, IsDeterministic) {
  const Platform platform = gen::homogeneous(4, 1000.0, kB);
  const auto a =
      sim::simulate(star(3), platform, kParams, dgemm_service(200), 7, quick());
  const auto b =
      sim::simulate(star(3), platform, kParams, dgemm_service(200), 7, quick());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.issued, b.issued);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  EXPECT_DOUBLE_EQ(a.mean_response_time, b.mean_response_time);
}

TEST(Simulator, RejectsBadInputs) {
  const Platform platform = gen::homogeneous(3, 1000.0, kB);
  EXPECT_THROW(
      sim::simulate(star(2), platform, kParams, dgemm_service(100), 0, quick()),
      Error);
  Hierarchy invalid;
  invalid.add_root(0);
  EXPECT_THROW(sim::simulate(invalid, platform, kParams, dgemm_service(100), 1,
                             quick()),
               Error);
}

TEST(Simulator, BusyAccountingIsPlausible) {
  const Platform platform = gen::homogeneous(2, 1000.0, kB);
  const auto result =
      sim::simulate(star(1), platform, kParams, dgemm_service(100), 2, quick());
  ASSERT_EQ(result.compute_busy.size(), 2u);
  // Both elements worked, and nobody can be busy longer than the run.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GT(result.compute_busy[i], 0.0);
    EXPECT_GT(result.comm_busy[i], 0.0);
    EXPECT_LE(result.compute_busy[i] + result.comm_busy[i],
              result.end_time + 1e-9);
  }
}

// -------------------------------------------- agreement with the model --

TEST(Simulator, MatchesModelWhenServiceLimited) {
  // DGEMM 200×200 star: service-limited; under ideal conditions the
  // saturated simulator throughput must approach Eq 15.
  const Platform platform = gen::homogeneous(3, 1000.0, kB);
  const ServiceSpec service = dgemm_service(200);
  const auto hierarchy = star(2);
  const auto predicted = model::evaluate(hierarchy, platform, kParams, service);
  const auto measured =
      sim::simulate(hierarchy, platform, kParams, service, 20, ideal());
  EXPECT_NEAR(measured.throughput, predicted.overall, 0.08 * predicted.overall);
}

TEST(Simulator, ThroughputScalesWithSecondServerAtLargeGrain) {
  // Fig 4's claim, measured: two servers ≈ double one server.
  const Platform platform = gen::homogeneous(3, 1000.0, kB);
  const ServiceSpec service = dgemm_service(200);
  const auto one =
      sim::simulate(star(1), platform, kParams, service, 20, quick());
  const auto two =
      sim::simulate(star(2), platform, kParams, service, 20, quick());
  EXPECT_GT(two.throughput, 1.7 * one.throughput);
}

TEST(Simulator, SecondServerDoesNotHelpAtSmallGrain) {
  // Fig 2's claim, measured: with DGEMM 10×10 the agent binds, so a second
  // server gives no improvement (and slightly hurts).
  const Platform platform = gen::homogeneous(3, 1000.0, kB);
  const ServiceSpec service = dgemm_service(10);
  const auto one =
      sim::simulate(star(1), platform, kParams, service, 40, quick());
  const auto two =
      sim::simulate(star(2), platform, kParams, service, 40, quick());
  EXPECT_LT(two.throughput, 1.05 * one.throughput);
}

TEST(Simulator, MeasuredStaysBelowPredictionWithOverheads) {
  // The Fig 3 gap: with middleware overheads on, measured < predicted.
  const Platform platform = gen::homogeneous(2, 1000.0, kB);
  const ServiceSpec service = dgemm_service(10);
  const auto predicted = model::evaluate(star(1), platform, kParams, service);
  const auto measured =
      sim::simulate(star(1), platform, kParams, service, 40, quick());
  EXPECT_LT(measured.throughput, predicted.overall);
}

TEST(Simulator, ServerSharesFollowEq8WhenSaturated) {
  // Heterogeneous servers, service-limited: completion shares must track
  // the model's Eq-8 split (stronger server completes more).
  Platform platform({{"agent", 2000.0}, {"slow", 500.0}, {"fast", 1500.0}}, kB);
  const ServiceSpec service = dgemm_service(310);
  Hierarchy h = star(2);
  const auto report = model::evaluate(h, platform, kParams, service);
  ASSERT_EQ(report.bottleneck, model::Bottleneck::Service);
  const auto run = sim::simulate(h, platform, kParams, service, 20, ideal());
  const double total = static_cast<double>(run.server_completions[1] +
                                           run.server_completions[2]);
  ASSERT_GT(total, 0.0);
  const double slow_share = static_cast<double>(run.server_completions[1]) / total;
  EXPECT_NEAR(slow_share, report.server_shares[0], 0.06);
}

// ------------------------------------------------------------ saturation --

TEST(Simulator, ThroughputSaturatesWithLoad) {
  // The paper's measurement methodology: throughput rises with clients,
  // then plateaus at the bottleneck rate.
  const Platform platform = gen::homogeneous(3, 1000.0, kB);
  const ServiceSpec service = dgemm_service(200);
  const auto curve = sim::load_sweep(star(2), platform, kParams, service,
                                     {1, 2, 5, 10, 20, 40}, quick(), 2);
  ASSERT_EQ(curve.size(), 6u);
  EXPECT_LT(curve.front().throughput, curve.back().throughput);
  // Plateau: the last two points are within 10% of each other.
  EXPECT_NEAR(curve[5].throughput, curve[4].throughput,
              0.10 * curve[4].throughput);
  EXPECT_GT(sim::peak_throughput(curve), 0.0);
}

TEST(Simulator, ResponseTimeGrowsWithOverload) {
  const Platform platform = gen::homogeneous(2, 1000.0, kB);
  const ServiceSpec service = dgemm_service(310);
  const auto light =
      sim::simulate(star(1), platform, kParams, service, 1, quick());
  const auto heavy =
      sim::simulate(star(1), platform, kParams, service, 30, quick());
  EXPECT_GT(heavy.mean_response_time, 2.0 * light.mean_response_time);
}

TEST(Simulator, DeepHierarchyRuns) {
  // 3-level tree: root → 3 agents → 4 servers each.
  const Platform platform = gen::homogeneous(16, 1000.0, kB);
  Hierarchy h;
  const auto root = h.add_root(0);
  NodeId next = 1;
  for (int a = 0; a < 3; ++a) {
    const auto agent = h.add_agent(root, next++);
    for (int s = 0; s < 4; ++s) h.add_server(agent, next++);
  }
  ASSERT_TRUE(h.validate(&platform).empty());
  const auto result =
      sim::simulate(h, platform, kParams, dgemm_service(310), 30, quick());
  EXPECT_GT(result.throughput, 0.0);
  // Every server participated in predictions (compute busy > 0).
  for (Hierarchy::Index i = 0; i < h.size(); ++i)
    EXPECT_GT(result.compute_busy[i], 0.0) << "element " << i;
}

TEST(Simulator, LoadSweepParallelMatchesSequential) {
  const Platform platform = gen::homogeneous(3, 1000.0, kB);
  const ServiceSpec service = dgemm_service(200);
  const std::vector<std::size_t> counts{1, 4, 8};
  const auto seq = sim::load_sweep(star(2), platform, kParams, service, counts,
                                   quick(), 1);
  const auto par = sim::load_sweep(star(2), platform, kParams, service, counts,
                                   quick(), 3);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].clients, par[i].clients);
    EXPECT_DOUBLE_EQ(seq[i].throughput, par[i].throughput);
  }
}

}  // namespace
}  // namespace adept
