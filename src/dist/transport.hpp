#pragma once
/// \file transport.hpp
/// \brief Worker transports of the distributed planning tier.
///
/// A Worker is one endpoint speaking the `adept serve` JSON-lines
/// protocol: send() a request line, receive() the matching response line
/// (responses arrive in request order — the serve contract). A Transport
/// spawns workers. Three implementations:
///
///   - InProcessTransport — answers each line by running the registry
///     planner on the calling thread. No serialization is skipped: the
///     request line is deserialized through io/wire exactly as a real
///     server would, so the in-process path exercises — and guarantees —
///     the same round-trip-exact wire behaviour the pipe path relies on
///     for bit-identity. This is also the Coordinator's fallback when a
///     worker fleet dies: a request never fails because of worker loss.
///
///   - PipeTransport — fork/execs a subprocess per worker (by default
///     this very binary, `adept serve`) and speaks the protocol over
///     stdin/stdout pipes. receive() enforces a timeout via poll(), so a
///     hung worker is detected, and the destructor supervises shutdown:
///     closing the worker's stdin makes serve quit on EOF, with a
///     bounded wait before SIGKILL.
///
///   - SocketTransport — each worker is one TCP connection to an
///     `adept serve --listen host:port` process (possibly on another
///     machine), same line framing and receive discipline as the pipe
///     path. The serve process is *not* supervised by this transport —
///     it is a long-lived service shared by many coordinators; worker
///     "respawn" is simply a reconnect.
///
/// Workers are single-owner: the WorkerPool drives each worker from one
/// drain thread at a time, so implementations need no internal locking.

#include <cstddef>
#include <memory>
#include <string>
#include <sys/types.h>
#include <vector>

#include "planner/registry.hpp"

namespace adept::dist {

/// One serve-protocol endpoint (see the file comment for the contract).
class Worker {
 public:
  virtual ~Worker() = default;

  /// Ships one request line (newline appended by the transport). False
  /// when the worker is unusable (died, pipe closed); the pool marks the
  /// worker failed and re-dispatches elsewhere.
  virtual bool send(const std::string& line) = 0;

  /// Receives the next response line, waiting at most `timeout_ms`.
  /// False on timeout, EOF, or a dead worker — the caller cannot tell
  /// which, and does not need to: any false is a worker failure.
  virtual bool receive(std::string& line, double timeout_ms) = 0;

  /// True until the worker is known dead (send/receive failed, kill()).
  virtual bool alive() const = 0;

  /// Hard-kills the worker (SIGKILL for subprocesses). Idempotent; used
  /// on failure paths and by fault-injection tests.
  virtual void kill() = 0;
};

/// Spawns workers for a WorkerPool.
class Transport {
 public:
  virtual ~Transport() = default;
  /// Transport name for logs/stats ("in-process", "pipe").
  virtual const char* name() const = 0;
  /// Spawns one worker; throws adept::Error when spawning itself fails
  /// (a worker that dies *after* spawning is detected on first use).
  virtual std::unique_ptr<Worker> spawn() = 0;
};

/// Same-process transport: every spawned worker answers request lines by
/// running the named registry planner directly — serially, on the
/// receiving thread, which makes leaf plans bit-identical to the local
/// sharded planner's serial path by construction. Parallelism comes from
/// the pool driving several workers from separate drain threads.
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(
      const PlannerRegistry& registry = PlannerRegistry::instance())
      : registry_(registry) {}

  const char* name() const final { return "in-process"; }
  std::unique_ptr<Worker> spawn() final;

 private:
  const PlannerRegistry& registry_;
};

/// Subprocess transport: each worker is `argv` fork/exec'd with its
/// stdin/stdout connected to the coordinator by pipes. The default argv
/// (see self_serve_command) runs this very binary's serve mode; tests
/// substitute shell one-liners to inject crashes, garbage and hangs.
class PipeTransport final : public Transport {
 public:
  /// `argv[0]` is the program (PATH-resolved via execvp); must be
  /// non-empty.
  explicit PipeTransport(std::vector<std::string> argv);

  const char* name() const final { return "pipe"; }
  std::unique_ptr<Worker> spawn() final;

 private:
  std::vector<std::string> argv_;
};

/// TCP transport: each worker is one connection to an `adept serve
/// --listen` endpoint, speaking the serve JSON-lines protocol over the
/// socket instead of stdio. spawn() connects eagerly — round-robin over
/// `endpoints`, so N workers against one endpoint open N independent
/// sessions on the same warm process — using a non-blocking connect
/// under an absolute deadline (EINTR-retried poll slices, exactly the
/// pipe receive discipline); a refused or timed-out connect throws,
/// which the pool turns into a Failed slot and the coordinator into an
/// in-process fallback. receive() shares the pipe worker's framing loop,
/// with the timeout already clipped to the request's remaining
/// `budget_ms` by the WorkerPool. kill() shuts the connection down both
/// ways (the serve session ends on EOF); there is no subprocess to
/// signal.
class SocketTransport final : public Transport {
 public:
  /// `endpoints` are "host:port" strings (names resolved via
  /// getaddrinfo); must be non-empty. `connect_timeout_ms` bounds each
  /// spawn()'s connect attempt.
  explicit SocketTransport(std::vector<std::string> endpoints,
                           double connect_timeout_ms = 5000.0);

  const char* name() const final { return "socket"; }
  std::unique_ptr<Worker> spawn() final;

 private:
  std::vector<std::string> endpoints_;
  double connect_timeout_ms_;
  std::size_t next_ = 0;
};

/// A supervised `adept serve --listen` subprocess for tests and benches:
/// forks `argv` with stdout piped back, waits for the child to announce
/// its bound endpoint ("listening on <host:port>" — the serve_listen
/// contract, which resolves port 0 to the kernel-picked ephemeral port),
/// and kills + reaps the child on destruction. This is process
/// *hosting*, deliberately separate from SocketTransport, which only
/// ever connects: production serve processes outlive any coordinator.
class ServeListener {
 public:
  /// Throws adept::Error when the child cannot be spawned or does not
  /// announce an endpoint within `announce_timeout_ms`.
  explicit ServeListener(std::vector<std::string> argv,
                         double announce_timeout_ms = 15000.0);
  ~ServeListener();

  ServeListener(const ServeListener&) = delete;
  ServeListener& operator=(const ServeListener&) = delete;

  /// The announced "host:port" (ephemeral port already resolved).
  const std::string& endpoint() const { return endpoint_; }
  pid_t pid() const { return pid_; }

  /// SIGKILLs the listener now (fault injection: every connected worker
  /// sees EOF). Idempotent; the destructor then only reaps.
  void kill_now();

 private:
  pid_t pid_ = -1;
  int out_fd_ = -1;
  std::string endpoint_;
};

/// The standard worker command for this process: {self, "serve",
/// "--jobs", jobs, "--cache", "0"} with `self` read from /proc/self/exe.
/// `jobs` = 0 lets each worker size its own pool. Throws adept::Error
/// when the executable path cannot be resolved (non-Linux without
/// procfs); callers may then fall back to the in-process transport.
std::vector<std::string> self_serve_command(std::size_t jobs = 1);

/// The standard listener command for this process: self_serve_command
/// plus {"--listen", "127.0.0.1:0"} and, when `max_sessions` > 0,
/// {"--max-sessions", max_sessions} so the listener exits cleanly after
/// a known number of sessions (sanitizer-friendly tests).
std::vector<std::string> self_serve_listen_command(
    std::size_t jobs = 1, std::size_t max_sessions = 0);

}  // namespace adept::dist
