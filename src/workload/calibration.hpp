#pragma once
/// \file calibration.hpp
/// \brief Reproduction of the paper's parameter-measurement procedure
/// (§5.1 → Table 3).
///
/// The paper obtains W_rep(d) = W_fix + W_sel·d by deploying stars of
/// varying degree, timing the agent's reply processing over 100 client
/// repetitions, and fitting a line over the degree (correlation 0.97).
/// ADePT reruns exactly that procedure against its simulator: deploy a
/// star of degree d, drive it with a serial client, read the agent's
/// measured per-request compute time, and least-squares fit over d. The
/// slope recovers W_sel; the intercept absorbs W_req + W_fix plus the
/// middleware overhead the simulator charges — the same bias a real
/// testbed measurement carries.

#include <cstddef>
#include <vector>

#include "common/stats.hpp"
#include "model/parameters.hpp"
#include "sim/simulator.hpp"

namespace adept::workload {

/// Outcome of the star-sweep W_rep fit.
struct WrepFit {
  std::vector<double> degrees;              ///< Degrees measured.
  std::vector<Seconds> agent_compute_time;  ///< Seconds per request at each degree.
  stats::LinearFit fit;                     ///< time(d) = slope·d + intercept.
  MFlop wsel_measured = 0.0;   ///< slope × agent power.
  MFlop fixed_measured = 0.0;  ///< intercept × agent power (W_req + W_fix + bias).
};

/// Runs the star-degree sweep on a homogeneous cluster of `agent_power`
/// nodes and fits the agent reply cost. `degrees` must contain at least
/// two distinct values.
WrepFit fit_wrep(const MiddlewareParams& params, MFlopRate agent_power,
                 MbitRate bandwidth, const std::vector<std::size_t>& degrees,
                 const sim::SimConfig& config = {});

/// Full Table 3 reproduction: the measured message sizes (wire module),
/// the fitted reply costs, and the host's Linpack-style MFlop rate.
struct CalibrationReport {
  MFlopRate host_mflops = 0.0;
  Mbit agent_sreq = 0.0;
  Mbit agent_srep = 0.0;
  Mbit server_sreq = 0.0;
  Mbit server_srep = 0.0;
  WrepFit wrep;
};

/// Measures everything Table 3 reports, using the simulator and the wire
/// encoder as the testbed substitute. `measure_host` disables the
/// wall-clock DGEMM timing (useful in unit tests).
CalibrationReport calibrate(const MiddlewareParams& params,
                            bool measure_host = true);

}  // namespace adept::workload
