#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace adept::strings {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars<double> is available in libstdc++ 11+; use strtod on a
  // bounded copy to also accept leading '+' uniformly.
  std::string buf(s);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::optional<long long> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace adept::strings
