#pragma once
/// \file planner.hpp
/// \brief Common result type and registry for deployment planners.
///
/// Every planner maps a Platform (+ middleware parameters + target service)
/// to a Hierarchy and reports the model's throughput prediction for it.
/// Planners never mutate the platform; the returned hierarchy may use a
/// subset of its nodes (the paper prefers the deployment with the fewest
/// resources among equal-throughput ones).

#include <algorithm>
#include <functional>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "hierarchy/hierarchy.hpp"
#include "model/evaluate.hpp"
#include "model/parameters.hpp"
#include "model/service.hpp"
#include "planner/request.hpp"
#include "platform/platform.hpp"

namespace adept {

/// Outcome of a planning run.
struct PlanResult {
  Hierarchy hierarchy;             ///< The planned agent/server tree.
  model::ThroughputReport report;  ///< Model prediction for `hierarchy`.
  std::vector<std::string> trace;  ///< Human-readable decision log.

  /// Platform nodes the plan deploys on (one element per node).
  std::size_t nodes_used() const { return hierarchy.size(); }
};

/// Signature shared by all planners (demand-aware ones bind the demand).
///
/// \deprecated New code addresses planners by name through PlannerRegistry
/// (registry.hpp) and calls them with a PlanRequest; this alias and the
/// free functions below are kept as thin compatibility wrappers for one
/// release.
using Planner = std::function<PlanResult(
    const Platform&, const MiddlewareParams&, const ServiceSpec&)>;

/// Star deployment: the node with the best (n-1)-child scheduling power
/// becomes the lone agent; every other node is a server (§5.3's first
/// intuitive deployment).
PlanResult plan_star(const Platform& platform, const MiddlewareParams& params,
                     const ServiceSpec& service);

/// Balanced complete d-ary deployment over all nodes in *platform order*
/// (the paper's second intuitive deployment: a human-drawn balanced tree,
/// not power-aware). `degree` 0 picks ⌈sqrt(n)⌉, which reproduces the
/// paper's 1 + 14 + 14×14 arrangement for 200 nodes.
PlanResult plan_balanced(const Platform& platform, const MiddlewareParams& params,
                         const ServiceSpec& service, std::size_t degree = 0);

/// One entry of a degree sweep (used by Table 4 and the ablations).
struct DegreeSweepEntry {
  std::size_t degree = 0;       ///< d of the complete d-ary tree.
  std::size_t nodes_used = 0;   ///< m ≤ n nodes actually deployed.
  RequestRate predicted = 0.0;  ///< Eq 16 for that tree.
};

/// Optimal-homogeneous planner (ref [10]): the best complete spanning
/// d-ary tree, searching every degree d and every node-count m ≤ n
/// (power-sorted placement on heterogeneous platforms). If `sweep` is
/// non-null it receives the best entry per degree.
PlanResult plan_homogeneous_optimal(const Platform& platform,
                                    const MiddlewareParams& params,
                                    const ServiceSpec& service,
                                    std::vector<DegreeSweepEntry>* sweep = nullptr);

/// The paper's contribution: Algorithm 1, the heterogeneous deployment
/// heuristic. Sorts nodes by potential scheduling power, grows the
/// hierarchy greedily (servers attach where scheduling headroom is
/// largest; servers convert to agents when the scheduling side must grow),
/// and stops when nodes run out, `demand` is met, or throughput starts
/// decreasing; among equal-throughput deployments the smallest one wins.
///
/// Candidates are priced on the incremental evaluation engine
/// (model::IncrementalEvaluator) and the independent per-k sweeps fan out
/// across `pool` when one is provided (PlanOptions::pool plumbs the
/// PlanningService's pool through). The result is bit-identical for any
/// pool size, including none: the per-k results are reduced in a fixed
/// deterministic order, lowest k winning ties.
///
/// `control` (optional, not owned) supplies a deadline / cancel token the
/// growth loops poll through a StopGuard: a cancelled or late run throws
/// adept::Error mid-flight instead of completing. Null (the legacy
/// callers) makes every checkpoint a no-op — results are unchanged.
PlanResult plan_heterogeneous(const Platform& platform,
                              const MiddlewareParams& params,
                              const ServiceSpec& service,
                              RequestRate demand = kUnlimitedDemand,
                              ThreadPool* pool = nullptr,
                              const PlanOptions* control = nullptr);

/// Heterogeneous-communication planner (the paper's future-work
/// scenario): plans with Algorithm 1 under the homogeneous-communication
/// model, then refines the node↦element assignment for the actual
/// per-node links by greedy swap hill-climbing on the extended Eq-16
/// evaluator (model::evaluate_hetero) — keeping the tree shape but moving
/// well-connected nodes into the positions that carry the most traffic.
/// On platforms with homogeneous links this is exactly plan_heterogeneous.
PlanResult plan_link_aware(const Platform& platform,
                           const MiddlewareParams& params,
                           const ServiceSpec& service,
                           RequestRate demand = kUnlimitedDemand,
                           ThreadPool* pool = nullptr,
                           const PlanOptions* control = nullptr);

/// Iterative bottleneck-removal improvement pass (the approach of the
/// authors' earlier work, ref [7], kept as a refinement stage): repeatedly
/// identifies the Eq-16 bottleneck of `start` and applies the local fix
/// (add an unused node as server when service-limited; rebalance children
/// away from a saturated non-root agent) until no step improves. Nodes in
/// `options.excluded` (e.g. hosts that failed to launch) are never
/// recruited; `options.demand` stops growth once the demand is met.
PlanResult improve_deployment(Hierarchy start, const Platform& platform,
                              const MiddlewareParams& params,
                              const ServiceSpec& service,
                              const PlanOptions& options);

/// \deprecated Raw-pointer compatibility form; forwards the excluded set
/// into PlanOptions. Kept for one release.
PlanResult improve_deployment(Hierarchy start, const Platform& platform,
                              const MiddlewareParams& params,
                              const ServiceSpec& service,
                              const std::set<NodeId>* excluded = nullptr);

/// Convenience: evaluates and packages an externally built hierarchy.
PlanResult make_plan(Hierarchy hierarchy, const Platform& platform,
                     const MiddlewareParams& params, const ServiceSpec& service);

/// The planner-wide candidate comparison: a deployment beats the
/// incumbent when its demand-clipped throughput is higher beyond a
/// 1-part-in-1e9 near-tie band, or near-ties it with fewer nodes. One
/// definition shared by the heuristic's fixed-order candidate replay
/// and the sharded backend's stitch/quality-floor decisions, so the
/// tie rule cannot drift between them. (The portfolio ranking in
/// planning_service.cpp is deliberately different: it compares two
/// *completed* runs symmetrically and layers a planner-name tiebreak
/// on top for cross-planner determinism.)
inline bool plan_candidate_beats(RequestRate rho_new, std::size_t nodes_new,
                                 RequestRate rho_old, std::size_t nodes_old) {
  const double tolerance = 1e-9 * std::max(rho_new, rho_old);
  if (rho_new > rho_old + tolerance) return true;
  return rho_new >= rho_old - tolerance && nodes_new < nodes_old;
}

}  // namespace adept
