#include "model/hetero_comm.hpp"

#include "common/error.hpp"

namespace adept::model {

namespace {

/// Bandwidth of the edge between an element and its parent. The root and
/// the servers' service-phase peer is the client, assumed to sit behind a
/// link at least as fast as the node's own (the paper's clients live on a
/// separate well-connected cluster), so the node's link is the narrow end.
MbitRate parent_edge(const Hierarchy& hierarchy, const Platform& platform,
                     Hierarchy::Index element) {
  const auto parent = hierarchy.element(element).parent;
  const NodeId node = hierarchy.node_of(element);
  if (parent == Hierarchy::npos) return platform.link_bandwidth(node);
  return platform.edge_bandwidth(node, hierarchy.node_of(parent));
}

}  // namespace

RequestRate agent_sched_throughput_hetero(const Hierarchy& hierarchy,
                                          const Platform& platform,
                                          const MiddlewareParams& params,
                                          Hierarchy::Index agent) {
  ADEPT_CHECK(hierarchy.is_agent(agent), "element is not an agent");
  const auto& element = hierarchy.element(agent);
  ADEPT_CHECK(!element.children.empty(), "agent has no children");
  const NodeId node = hierarchy.node_of(agent);
  const MFlopRate w = platform.power(node);
  const MbitRate up = parent_edge(hierarchy, platform, agent);

  Seconds per_request =
      (params.agent.wreq + agent_wrep(params, element.children.size())) / w;
  per_request += params.agent.sreq / up + params.agent.srep / up;
  for (Hierarchy::Index child : element.children) {
    const MbitRate down = platform.edge_bandwidth(node, hierarchy.node_of(child));
    per_request += params.agent.srep / down;  // child reply in
    per_request += params.agent.sreq / down;  // request out
  }
  return 1.0 / per_request;
}

RequestRate server_sched_throughput_hetero(const Hierarchy& hierarchy,
                                           const Platform& platform,
                                           const MiddlewareParams& params,
                                           Hierarchy::Index server) {
  ADEPT_CHECK(!hierarchy.is_agent(server), "element is not a server");
  const MFlopRate w = platform.power(hierarchy.node_of(server));
  const MbitRate up = parent_edge(hierarchy, platform, server);
  return 1.0 / (params.server.wpre / w +
                (params.server.sreq + params.server.srep) / up);
}

RequestRate service_throughput_hetero(const Hierarchy& hierarchy,
                                      const Platform& platform,
                                      const MiddlewareParams& params,
                                      const ServiceSpec& service) {
  std::vector<MFlopRate> powers;
  std::vector<MbitRate> links;
  for (Hierarchy::Index i : hierarchy.servers()) {
    powers.push_back(platform.power(hierarchy.node_of(i)));
    links.push_back(platform.link_bandwidth(hierarchy.node_of(i)));
  }
  ADEPT_CHECK(!powers.empty(), "hierarchy has no servers");

  double prediction_load = 0.0;  // Σ W_pre / W_app
  double capacity = 0.0;         // Σ w_i / W_app
  for (MFlopRate w : powers) {
    prediction_load += params.server.wpre / service.wapp;
    capacity += w / service.wapp;
  }
  const Seconds comp_per_request = (1.0 + prediction_load) / capacity;

  // Each request's service messages transit the chosen server's link;
  // weight by the Eq-8 steady-state shares.
  const auto shares = service_fractions(params, powers, service);
  Seconds comm_per_request = 0.0;
  for (std::size_t i = 0; i < links.size(); ++i)
    comm_per_request +=
        shares[i] * (params.server.sreq + params.server.srep) / links[i];

  return 1.0 / (comp_per_request + comm_per_request);
}

ThroughputReport evaluate_hetero(const Hierarchy& hierarchy,
                                 const Platform& platform,
                                 const MiddlewareParams& params,
                                 const ServiceSpec& service) {
  hierarchy.validate_or_throw(&platform);
  params.validate();
  return evaluate_hetero_unchecked(hierarchy, platform, params, service);
}

ThroughputReport evaluate_hetero_unchecked(const Hierarchy& hierarchy,
                                           const Platform& platform,
                                           const MiddlewareParams& params,
                                           const ServiceSpec& service) {
  detail::count_evaluation();

  ThroughputReport report;
  bool first = true;
  Hierarchy::Index first_server = Hierarchy::npos;
  std::vector<MFlopRate> server_powers;
  for (Hierarchy::Index i = 0; i < hierarchy.size(); ++i) {
    RequestRate rate = 0.0;
    if (hierarchy.is_agent(i)) {
      rate = agent_sched_throughput_hetero(hierarchy, platform, params, i);
    } else {
      rate = server_sched_throughput_hetero(hierarchy, platform, params, i);
      if (first_server == Hierarchy::npos) first_server = i;
      server_powers.push_back(platform.power(hierarchy.node_of(i)));
    }
    if (first || rate < report.sched) {
      report.sched = rate;
      report.limiting_element = i;
      report.bottleneck = hierarchy.is_agent(i) ? Bottleneck::AgentScheduling
                                                : Bottleneck::ServerPrediction;
      first = false;
    }
  }

  report.service = service_throughput_hetero(hierarchy, platform, params, service);
  report.server_shares = service_fractions(params, server_powers, service);
  if (report.service < report.sched) {
    report.overall = report.service;
    report.bottleneck = Bottleneck::Service;
    report.limiting_element = first_server;
  } else {
    report.overall = report.sched;
  }
  return report;
}

}  // namespace adept::model
