/// \file test_model.cpp
/// \brief Unit and property tests for the steady-state throughput model
/// (the paper's Eqs 1–16 and Table 3 parameters).

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "hierarchy/hierarchy.hpp"
#include "model/evaluate.hpp"
#include "model/parameters.hpp"
#include "model/service.hpp"
#include "model/throughput.hpp"
#include "platform/generator.hpp"

namespace adept {
namespace {

const MiddlewareParams kParams = MiddlewareParams::diet_grid5000();
constexpr MbitRate kB = 1000.0;  // Mbit/s, gigabit as in the paper
constexpr MFlopRate kW = 1000.0; // MFlop/s

// ------------------------------------------------------------ parameters --

TEST(Parameters, Table3Values) {
  EXPECT_DOUBLE_EQ(kParams.agent.wreq, 1.7e-1);
  EXPECT_DOUBLE_EQ(kParams.agent.wfix, 4.0e-3);
  EXPECT_DOUBLE_EQ(kParams.agent.wsel, 5.4e-3);
  EXPECT_DOUBLE_EQ(kParams.agent.sreq, 5.3e-3);
  EXPECT_DOUBLE_EQ(kParams.agent.srep, 5.4e-3);
  EXPECT_DOUBLE_EQ(kParams.server.wpre, 6.4e-3);
  EXPECT_DOUBLE_EQ(kParams.server.sreq, 5.3e-5);
  EXPECT_DOUBLE_EQ(kParams.server.srep, 6.4e-5);
}

TEST(Parameters, ValidateRejectsNegativeAndAllZero) {
  MiddlewareParams bad = kParams;
  bad.agent.wreq = -1.0;
  EXPECT_THROW(bad.validate(), Error);
  MiddlewareParams zero;
  EXPECT_THROW(zero.validate(), Error);
  EXPECT_NO_THROW(kParams.validate());
}

// --------------------------------------------------------------- service --

TEST(Service, DgemmFlopCount) {
  // 2·n³ flop: the standard multiply-add count for square DGEMM.
  EXPECT_DOUBLE_EQ(dgemm_mflop(10), 2e-3);
  EXPECT_DOUBLE_EQ(dgemm_mflop(100), 2.0);
  EXPECT_DOUBLE_EQ(dgemm_mflop(1000), 2000.0);
  EXPECT_EQ(dgemm_service(310).name, "dgemm-310");
  EXPECT_THROW(dgemm_mflop(0), Error);
}

// --------------------------------------------------- per-phase times (1-5) --

TEST(PhaseTimes, Equation1AgentReceive) {
  // (S_req + d·S_rep) / B with agent-level sizes.
  EXPECT_NEAR(model::agent_receive_time(kParams, 2, kB),
              (5.3e-3 + 2 * 5.4e-3) / 1000.0, 1e-15);
}

TEST(PhaseTimes, Equation2AgentSend) {
  // (d·S_req + S_rep) / B.
  EXPECT_NEAR(model::agent_send_time(kParams, 2, kB),
              (2 * 5.3e-3 + 5.4e-3) / 1000.0, 1e-15);
}

TEST(PhaseTimes, Equations3And4Server) {
  EXPECT_NEAR(model::server_receive_time(kParams, kB), 5.3e-5 / 1000.0, 1e-18);
  EXPECT_NEAR(model::server_send_time(kParams, kB), 6.4e-5 / 1000.0, 1e-18);
}

TEST(PhaseTimes, WrepIsLinearInDegree) {
  // Table 3: W_rep = 4.0e-3 + 5.4e-3·d.
  EXPECT_NEAR(model::agent_wrep(kParams, 1), 9.4e-3, 1e-15);
  EXPECT_NEAR(model::agent_wrep(kParams, 10), 4.0e-3 + 5.4e-2, 1e-15);
}

TEST(PhaseTimes, Equation5AgentComputation) {
  EXPECT_NEAR(model::agent_comp_time(kParams, kW, 2),
              (1.7e-1 + 4.0e-3 + 2 * 5.4e-3) / 1000.0, 1e-15);
}

// ------------------------------------------- element throughputs (13-15) --

TEST(Throughput, AgentSchedMatchesHandComputation) {
  const double comp = (1.7e-1 + 4.0e-3 + 2 * 5.4e-3) / 1000.0;
  const double recv = (5.3e-3 + 2 * 5.4e-3) / 1000.0;
  const double send = (2 * 5.3e-3 + 5.4e-3) / 1000.0;
  EXPECT_NEAR(model::agent_sched_throughput(kParams, kW, 2, kB),
              1.0 / (comp + recv + send), 1e-9);
}

TEST(Throughput, ServerSchedMatchesHandComputation) {
  const double t = 6.4e-3 / 1000.0 + (5.3e-5 + 6.4e-5) / 1000.0;
  EXPECT_NEAR(model::server_sched_throughput(kParams, kW, kB), 1.0 / t, 1e-6);
}

TEST(Throughput, ServiceSingleServerMatchesHandComputation) {
  // Eq 15 with one server: 1 / ((W_app + W_pre)/w + (S_req+S_rep)/B).
  const ServiceSpec service = dgemm_service(200);  // W_app = 16 MFlop
  const std::vector<MFlopRate> powers{kW};
  const double expected =
      1.0 / ((16.0 + 6.4e-3) / 1000.0 + (5.3e-5 + 6.4e-5) / 1000.0);
  EXPECT_NEAR(model::service_throughput(kParams, powers, service, kB), expected,
              1e-9);
}

TEST(Throughput, ServiceTwoEqualServersRoughlyDoubles) {
  const ServiceSpec service = dgemm_service(200);
  const std::vector<MFlopRate> one{kW};
  const std::vector<MFlopRate> two{kW, kW};
  const double r1 = model::service_throughput(kParams, one, service, kB);
  const double r2 = model::service_throughput(kParams, two, service, kB);
  EXPECT_GT(r2, 1.95 * r1);
  EXPECT_LT(r2, 2.0 * r1 + 1e-9);
}

/// Property sweep: an agent's scheduling throughput strictly decreases
/// with its degree (every extra child adds computation and traffic).
class AgentDegreeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AgentDegreeSweep, SchedulingPowerDecreasesWithDegree) {
  const std::size_t d = GetParam();
  EXPECT_GT(model::agent_sched_throughput(kParams, kW, d, kB),
            model::agent_sched_throughput(kParams, kW, d + 1, kB));
}

TEST_P(AgentDegreeSweep, SchedulingPowerIncreasesWithNodePower) {
  const std::size_t d = GetParam();
  EXPECT_GT(model::agent_sched_throughput(kParams, 2.0 * kW, d, kB),
            model::agent_sched_throughput(kParams, kW, d, kB));
}

TEST_P(AgentDegreeSweep, BandwidthOnlyHelps) {
  const std::size_t d = GetParam();
  EXPECT_GE(model::agent_sched_throughput(kParams, kW, d, 10.0 * kB),
            model::agent_sched_throughput(kParams, kW, d, kB));
}

INSTANTIATE_TEST_SUITE_P(Degrees, AgentDegreeSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 14, 50, 199));

/// Property sweep: adding servers never hurts the collective service rate.
class ServerCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ServerCountSweep, ServiceThroughputMonotoneInServers) {
  const ServiceSpec service = dgemm_service(310);
  std::vector<MFlopRate> powers(GetParam(), kW);
  const double before = model::service_throughput(kParams, powers, service, kB);
  powers.push_back(kW);
  const double after = model::service_throughput(kParams, powers, service, kB);
  EXPECT_GT(after, before);
}

TEST_P(ServerCountSweep, FractionsSumToOneAndFollowPower) {
  // Heterogeneous set: power grows with index, so shares must not decrease.
  std::vector<MFlopRate> powers;
  for (std::size_t i = 0; i < GetParam() + 1; ++i)
    powers.push_back(500.0 + 250.0 * static_cast<double>(i));
  const ServiceSpec service = dgemm_service(310);
  const auto shares = model::service_fractions(kParams, powers, service);
  double total = 0.0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    total += shares[i];
    if (i > 0) {
      EXPECT_GE(shares[i], shares[i - 1] - 1e-12);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Counts, ServerCountSweep,
                         ::testing::Values(1, 2, 4, 9, 25, 80));

TEST(Throughput, FractionsEqualForEqualServers) {
  const std::vector<MFlopRate> powers(4, kW);
  const auto shares =
      model::service_fractions(kParams, powers, dgemm_service(100));
  for (double share : shares) EXPECT_NEAR(share, 0.25, 1e-12);
}

TEST(Throughput, InvalidInputsThrow) {
  EXPECT_THROW(model::agent_sched_throughput(kParams, 0.0, 1, kB), Error);
  EXPECT_THROW(model::agent_sched_throughput(kParams, kW, 0, kB), Error);
  EXPECT_THROW(model::server_sched_throughput(kParams, kW, 0.0), Error);
  const std::vector<MFlopRate> none;
  EXPECT_THROW(
      model::service_throughput(kParams, none, dgemm_service(10), kB), Error);
}

// ------------------------------------------------------- evaluate (Eq 16) --

Hierarchy star(std::size_t servers) {
  Hierarchy h;
  const auto root = h.add_root(0);
  for (NodeId id = 1; id <= servers; ++id) h.add_server(root, id);
  return h;
}

TEST(Evaluate, StarOverallIsMinOfTerms) {
  const Platform platform = gen::homogeneous(3, kW, kB);
  const ServiceSpec service = dgemm_service(200);
  const auto report = model::evaluate(star(2), platform, kParams, service);

  const double agent = model::agent_sched_throughput(kParams, kW, 2, kB);
  const double server_pred = model::server_sched_throughput(kParams, kW, kB);
  const std::vector<MFlopRate> powers{kW, kW};
  const double svc = model::service_throughput(kParams, powers, service, kB);

  EXPECT_NEAR(report.sched, std::min(agent, server_pred), 1e-9);
  EXPECT_NEAR(report.service, svc, 1e-9);
  EXPECT_NEAR(report.overall, std::min(report.sched, report.service), 1e-12);
}

TEST(Evaluate, SmallGrainIsAgentLimited) {
  // DGEMM 10×10: the paper's Fig 2 regime — the agent binds.
  const Platform platform = gen::homogeneous(3, kW, kB);
  const auto report =
      model::evaluate(star(2), platform, kParams, dgemm_service(10));
  EXPECT_EQ(report.bottleneck, model::Bottleneck::AgentScheduling);
  EXPECT_EQ(report.limiting_element, 0u);
}

TEST(Evaluate, LargeGrainIsServiceLimited) {
  // DGEMM 1000×1000: the paper's Fig 7 regime — servers bind.
  const Platform platform = gen::homogeneous(3, kW, kB);
  const auto report =
      model::evaluate(star(2), platform, kParams, dgemm_service(1000));
  EXPECT_EQ(report.bottleneck, model::Bottleneck::Service);
  EXPECT_LT(report.service, report.sched);
}

TEST(Evaluate, AddingServerToAgentLimitedStarHurts) {
  // The Fig 2/3 claim: with DGEMM 10×10 a second server lowers throughput.
  const Platform platform = gen::homogeneous(3, kW, kB);
  const auto one = model::evaluate(star(1), platform, kParams, dgemm_service(10));
  const auto two = model::evaluate(star(2), platform, kParams, dgemm_service(10));
  EXPECT_LT(two.overall, one.overall);
}

TEST(Evaluate, AddingServerToServiceLimitedStarDoubles) {
  // The Fig 4/5 claim: with DGEMM 200×200 a second server ≈ doubles.
  const Platform platform = gen::homogeneous(3, kW, kB);
  const auto one = model::evaluate(star(1), platform, kParams, dgemm_service(200));
  const auto two = model::evaluate(star(2), platform, kParams, dgemm_service(200));
  EXPECT_GT(two.overall, 1.9 * one.overall);
}

TEST(Evaluate, WeakestAgentBindsInChainOfAgents) {
  // Root (fast) → sub-agent (slow) with two servers: the slow agent binds.
  Platform platform({{"fast", 4000.0},
                     {"slow", 60.0},
                     {"s1", 1000.0},
                     {"s2", 1000.0},
                     {"s3", 1000.0}},
                    kB);
  Hierarchy h;
  const auto root = h.add_root(0);
  const auto mid = h.add_agent(root, 1);
  h.add_server(mid, 2);
  h.add_server(mid, 3);
  h.add_server(root, 4);
  const auto report = model::evaluate(h, platform, kParams, dgemm_service(10));
  EXPECT_EQ(report.bottleneck, model::Bottleneck::AgentScheduling);
  EXPECT_EQ(report.limiting_element, mid);
}

TEST(Evaluate, ServerSharesAlignWithServerList) {
  Platform platform({{"a", 1000.0}, {"s1", 500.0}, {"s2", 1500.0}}, kB);
  const auto report =
      model::evaluate(star(2), platform, kParams, dgemm_service(310));
  ASSERT_EQ(report.server_shares.size(), 2u);
  EXPECT_LT(report.server_shares[0], report.server_shares[1]);
  EXPECT_NEAR(report.server_shares[0] + report.server_shares[1], 1.0, 1e-12);
}

TEST(Evaluate, RejectsInvalidHierarchy) {
  const Platform platform = gen::homogeneous(3, kW, kB);
  Hierarchy h;
  h.add_root(0);  // no children
  EXPECT_THROW(model::evaluate(h, platform, kParams, dgemm_service(10)), Error);
}

TEST(Evaluate, BottleneckNamesAreStable) {
  EXPECT_STREQ(model::bottleneck_name(model::Bottleneck::AgentScheduling),
               "agent-scheduling");
  EXPECT_STREQ(model::bottleneck_name(model::Bottleneck::ServerPrediction),
               "server-prediction");
  EXPECT_STREQ(model::bottleneck_name(model::Bottleneck::Service), "service");
}

}  // namespace
}  // namespace adept
