/// \file bench_fig2_fig3_small_grain.cpp
/// \brief Reproduces Figures 2 and 3: star hierarchies with one or two
/// servers under DGEMM 10×10.
///
/// Paper claims: at this grain both deployments are *agent-limited*, so
/// (a) the measured curves saturate at nearly the same level with the
/// 2-server star slightly below the 1-server star (Fig 2: 295 vs 283
/// req/s), and (b) measured throughput is far below the model's
/// prediction because per-request middleware overheads dominate at small
/// grain (Fig 3: 1052 predicted vs 295 measured for 1 SeD).

#include "bench_util.hpp"

int main() {
  using namespace adept;
  bench::banner("Figures 2 & 3 — star with 1 vs 2 servers, DGEMM 10x10");

  const MiddlewareParams params = bench::params();
  const Platform platform = gen::grid5000_lyon(3);
  const ServiceSpec service = dgemm_service(10);

  Hierarchy one_sed;
  const auto root1 = one_sed.add_root(0);
  one_sed.add_server(root1, 1);
  Hierarchy two_sed;
  const auto root2 = two_sed.add_root(0);
  two_sed.add_server(root2, 1);
  two_sed.add_server(root2, 2);

  const std::vector<std::size_t> clients{1, 2, 5, 10, 20, 40, 60, 80, 100,
                                         120, 160, 200};
  const auto config = bench::sweep_config();
  const auto curve1 =
      sim::load_sweep(one_sed, platform, params, service, clients, config);
  const auto curve2 =
      sim::load_sweep(two_sed, platform, params, service, clients, config);

  bench::print_curves(
      "Fig 2 — measured throughput vs load (paper: both plateau ~295/283)",
      {"1 SeD", "2 SeDs"}, {curve1, curve2});

  const auto predicted1 = model::evaluate(one_sed, platform, params, service);
  const auto predicted2 = model::evaluate(two_sed, platform, params, service);
  const RequestRate measured1 = sim::peak_throughput(curve1);
  const RequestRate measured2 = sim::peak_throughput(curve2);

  Table fig3("Fig 3 — predicted vs measured maximum throughput (req/s)");
  fig3.set_header({"deployment", "predicted", "measured", "paper pred",
                   "paper meas"});
  fig3.add_row({"1 SeD", Table::num(predicted1.overall, 0),
                Table::num(measured1, 0), "1052", "295"});
  fig3.add_row({"2 SeDs", Table::num(predicted2.overall, 0),
                Table::num(measured2, 0), "1460", "283"});
  std::cout << fig3 << '\n';

  bench::verdict("both deployments are agent-limited in the model",
                 predicted1.bottleneck == model::Bottleneck::AgentScheduling &&
                     predicted2.bottleneck == model::Bottleneck::AgentScheduling);
  bench::verdict("adding the second server does not raise measured throughput",
                 measured2 <= 1.05 * measured1);
  bench::verdict("measured is well below predicted (overhead-dominated grain)",
                 measured1 < 0.7 * predicted1.overall &&
                     measured2 < 0.7 * predicted2.overall);
  return 0;
}
