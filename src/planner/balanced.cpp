#include <cmath>

#include "common/error.hpp"
#include "planner/dary.hpp"
#include "planner/planner.hpp"

namespace adept {

namespace detail {

Hierarchy complete_dary(const std::vector<NodeId>& order, std::size_t degree) {
  const std::size_t m = order.size();
  ADEPT_CHECK(m >= 2, "a deployment needs at least two nodes");
  ADEPT_CHECK(degree >= 1, "tree degree must be at least 1");

  // A chain (degree 1 beyond the root) is never useful: with degree 1 the
  // only valid complete tree is one agent + one server.
  if (degree == 1) {
    Hierarchy pair;
    const auto root = pair.add_root(order[0]);
    pair.add_server(root, order[1]);
    return pair;
  }

  // Heap layout: position p has children degree*p+1 … degree*p+degree.
  auto child_count = [&](std::size_t p) -> std::size_t {
    const std::size_t lo = degree * p + 1;
    if (lo >= m) return 0;
    return std::min(degree, m - lo);
  };

  Hierarchy hierarchy;
  hierarchy.reserve(m);
  std::vector<Hierarchy::Index> element_of(m, Hierarchy::npos);
  element_of[0] = hierarchy.add_root(order[0]);
  for (std::size_t p = 1; p < m; ++p) {
    const std::size_t parent_pos = (p - 1) / degree;
    Hierarchy::Index parent = element_of[parent_pos];
    // If the parent position was demoted to a server (single-child fixup
    // below), attach to the grandparent instead. At most one level: only
    // the last internal heap position can be short of children.
    if (!hierarchy.is_agent(parent))
      parent = hierarchy.element(parent).parent;
    // A non-root position with exactly one child would violate the paper's
    // ≥2-children rule; demote it to a server and let its child climb.
    if (child_count(p) >= 2)
      element_of[p] = hierarchy.add_agent(parent, order[p]);
    else
      element_of[p] = hierarchy.add_server(parent, order[p]);
  }
  return hierarchy;
}

}  // namespace detail

PlanResult plan_balanced(const Platform& platform, const MiddlewareParams& params,
                         const ServiceSpec& service, std::size_t degree) {
  const std::size_t n = platform.size();
  ADEPT_CHECK(n >= 2, "a deployment needs at least two nodes");
  if (degree == 0)
    degree = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
  degree = std::max<std::size_t>(1, std::min(degree, n - 1));

  std::vector<NodeId> order(n);
  for (NodeId id = 0; id < n; ++id) order[id] = id;

  Hierarchy hierarchy = detail::complete_dary(order, degree);
  PlanResult result = make_plan(std::move(hierarchy), platform, params, service);
  result.trace.push_back("balanced: complete " + std::to_string(degree) +
                         "-ary tree over all " + std::to_string(n) + " nodes");
  return result;
}

}  // namespace adept
