#include "deploy/launcher.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "planner/planner.hpp"

namespace adept::deploy {

namespace {

/// Mutable working copy used by prune_failures.
struct WorkElement {
  NodeId node = 0;
  bool agent = false;
  bool alive = true;
  Hierarchy::Index parent = Hierarchy::npos;
  std::vector<Hierarchy::Index> children;
};

}  // namespace

std::vector<LaunchStep> build_launch_plan(const Hierarchy& hierarchy,
                                          const Platform& platform) {
  hierarchy.validate_or_throw(&platform);
  std::vector<LaunchStep> plan;
  plan.reserve(hierarchy.size());
  std::queue<Hierarchy::Index> frontier;
  frontier.push(hierarchy.root());
  while (!frontier.empty()) {
    const Hierarchy::Index element = frontier.front();
    frontier.pop();
    const NodeId node = hierarchy.node_of(element);
    const auto parent = hierarchy.element(element).parent;
    LaunchStep step;
    step.element = element;
    step.node = node;
    const std::string binary =
        hierarchy.is_agent(element) ? "dietAgent" : "dietServer";
    step.command = "ssh " + platform.node(node).name + " " + binary;
    if (parent == Hierarchy::npos)
      step.command += " --master";
    else
      step.command +=
          " --parent " + platform.node(hierarchy.node_of(parent)).name;
    plan.push_back(std::move(step));
    for (Hierarchy::Index child : hierarchy.element(element).children)
      frontier.push(child);
  }
  return plan;
}

LaunchReport simulate_launch(const Hierarchy& hierarchy, const Platform& platform,
                             double failure_rate, Rng& rng) {
  ADEPT_CHECK(failure_rate >= 0.0 && failure_rate < 1.0,
              "failure rate must be in [0, 1)");
  const auto plan = build_launch_plan(hierarchy, platform);

  LaunchReport report;
  NodeSet failed_nodes;
  std::vector<bool> ancestor_failed(hierarchy.size(), false);
  for (const auto& step : plan) {
    const auto parent = hierarchy.element(step.element).parent;
    if (parent != Hierarchy::npos && ancestor_failed[parent]) {
      ancestor_failed[step.element] = true;
      report.skipped.push_back(step.element);
      continue;
    }
    if (rng.uniform() < failure_rate) {
      ancestor_failed[step.element] = true;
      failed_nodes.insert(step.node);
      report.failed.push_back(step.element);
      continue;
    }
    report.launched.push_back(step.element);
  }
  report.surviving = prune_failures(hierarchy, failed_nodes);
  return report;
}

std::optional<Hierarchy> prune_failures(const Hierarchy& hierarchy,
                                        const NodeSet& failed_nodes) {
  ADEPT_CHECK(!hierarchy.empty(), "cannot prune an empty hierarchy");
  if (failed_nodes.count(hierarchy.node_of(hierarchy.root())))
    return std::nullopt;

  // Working copy; kill failed subtrees top-down.
  std::vector<WorkElement> work(hierarchy.size());
  for (Hierarchy::Index i = 0; i < hierarchy.size(); ++i) {
    const auto& element = hierarchy.element(i);
    work[i] = {element.node, element.role == Role::Agent, true, element.parent,
               element.children};
  }
  for (Hierarchy::Index i = 0; i < work.size(); ++i) {
    const bool parent_dead =
        work[i].parent != Hierarchy::npos && !work[work[i].parent].alive;
    if (parent_dead || failed_nodes.count(work[i].node))
      work[i].alive = false;  // children follow in later iterations (i < child)
  }
  auto live_children = [&](Hierarchy::Index e) {
    std::vector<Hierarchy::Index> kids;
    for (Hierarchy::Index c : work[e].children)
      if (work[c].alive) kids.push_back(c);
    return kids;
  };

  // Restore the ≥2-children rule bottom-up: childless non-root agents
  // demote to servers; single-child agents splice their child upward and
  // demote. Iterate until stable (each pass only demotes, so it ends).
  for (bool changed = true; changed;) {
    changed = false;
    for (Hierarchy::Index i = work.size(); i-- > 0;) {
      if (!work[i].alive || !work[i].agent || i == 0) continue;
      auto kids = live_children(i);
      if (kids.size() >= 2) continue;
      if (kids.size() == 1) {
        // Splice the lone child to the grandparent.
        work[kids[0]].parent = work[i].parent;
        work[work[i].parent].children.push_back(kids[0]);
      }
      work[i].agent = false;  // demoted to server (leaf)
      work[i].children.clear();
      changed = true;
    }
  }

  // Materialise; reject degenerate outcomes.
  const auto root_kids = live_children(0);
  if (root_kids.empty()) return std::nullopt;

  Hierarchy out;
  std::vector<Hierarchy::Index> map(work.size(), Hierarchy::npos);
  map[0] = out.add_root(work[0].node);
  std::queue<Hierarchy::Index> frontier;
  frontier.push(0);
  while (!frontier.empty()) {
    const Hierarchy::Index current = frontier.front();
    frontier.pop();
    for (Hierarchy::Index child : live_children(current)) {
      if (work[child].agent) {
        map[child] = out.add_agent(map[current], work[child].node);
        frontier.push(child);
      } else {
        out.add_server(map[current], work[child].node);
      }
    }
  }
  if (out.server_count() == 0) return std::nullopt;
  ADEPT_ASSERT(out.validate().empty(), "pruned hierarchy is invalid");
  return out;
}

std::optional<Hierarchy> repair(const Hierarchy& hierarchy,
                                const Platform& platform,
                                const NodeSet& failed_nodes,
                                const MiddlewareParams& params,
                                const ServiceSpec& service) {
  auto surviving = prune_failures(hierarchy, failed_nodes);
  if (!surviving.has_value()) return std::nullopt;
  PlanOptions options;
  options.excluded = failed_nodes;  // failed hosts are never recruited
  PlanResult improved = improve_deployment(std::move(*surviving), platform,
                                           params, service, options);
  return std::move(improved.hierarchy);
}

}  // namespace adept::deploy
