/// \file bench_fig6_hetero_310.cpp
/// \brief Reproduces Figure 6: the automatically generated hierarchy vs
/// two intuitive deployments on a 200-node heterogeneous cluster, DGEMM
/// 310×310.
///
/// Paper setup (§5.3): 200 Orsay nodes heterogenised by background load;
/// the heuristic chose a 3-level hierarchy using only 156 nodes and
/// out-measured both a full star and a hand-balanced 1+14+14×14 tree
/// (peaks roughly 215 vs 30 vs 180 req/s at 700 clients).

#include "bench_util.hpp"

#include "common/rng.hpp"

int main(int argc, char** argv) {
  using namespace adept;
  bench::banner(
      "Figure 6 — automatic vs star vs balanced, 200 heterogeneous nodes, "
      "DGEMM 310x310");

  const MiddlewareParams params = bench::params();
  Rng rng(adept::bench::seed_from_args(argc, argv, 20080615));
  // Default seed: the same "background-loaded" cluster
  const Platform platform = gen::grid5000_orsay_loaded(200, rng);
  const ServiceSpec service = dgemm_service(310);

  const auto automatic = plan_heterogeneous(platform, params, service);
  const auto star = plan_star(platform, params, service);
  const auto balanced = plan_balanced(platform, params, service);

  Table plans("Deployments under test");
  plans.set_header({"deployment", "nodes used", "agents", "depth",
                    "max degree", "model rho (req/s)"});
  auto describe = [&](const std::string& name, const PlanResult& plan) {
    plans.add_row({name, Table::num(static_cast<long long>(plan.nodes_used())),
                   Table::num(static_cast<long long>(plan.hierarchy.agent_count())),
                   Table::num(static_cast<long long>(plan.hierarchy.max_depth())),
                   Table::num(static_cast<long long>(plan.hierarchy.max_degree())),
                   Table::num(plan.report.overall, 1)});
  };
  describe("automatic", automatic);
  describe("star", star);
  describe("balanced", balanced);
  std::cout << plans << '\n';

  const std::vector<std::size_t> clients{1, 5, 10, 25, 50, 100, 200, 300,
                                         400, 500, 600, 700};
  // Individual DGEMM 310 requests take up to ~1.5 s on the most loaded
  // nodes, so steady state needs a longer window than the default.
  auto config = bench::sweep_config();
  config.warmup = 6.0;
  config.measure = 12.0;
  const auto auto_curve = sim::load_sweep(automatic.hierarchy, platform, params,
                                          service, clients, config);
  const auto star_curve = sim::load_sweep(star.hierarchy, platform, params,
                                          service, clients, config);
  const auto balanced_curve = sim::load_sweep(balanced.hierarchy, platform,
                                              params, service, clients, config);

  bench::print_curves(
      "Fig 6 — measured throughput vs load (paper peaks ~215/~30/~180)",
      {"automatic", "star", "balanced"},
      {auto_curve, star_curve, balanced_curve});

  const RequestRate auto_peak = sim::peak_throughput(auto_curve);
  const RequestRate star_peak = sim::peak_throughput(star_curve);
  const RequestRate balanced_peak = sim::peak_throughput(balanced_curve);
  std::cout << "peaks: automatic " << Table::num(auto_peak, 1) << ", star "
            << Table::num(star_peak, 1) << ", balanced "
            << Table::num(balanced_peak, 1) << " req/s\n\n";

  bench::verdict("automatic beats the star deployment", auto_peak > star_peak);
  bench::verdict("automatic beats the balanced deployment",
                 auto_peak > balanced_peak);
  bench::verdict("automatic uses a multi-level hierarchy (depth >= 2)",
                 automatic.hierarchy.max_depth() >= 2);
  std::cout << "note: automatic committed " << automatic.nodes_used() << "/"
            << platform.size()
            << " nodes (the paper's run committed 156/200; the exact count "
               "depends on the power distribution)\n";
  return 0;
}
