/// \file grid5000_campaign.cpp
/// \brief End-to-end rerun of the paper's §5.3 heterogeneous-cluster
/// campaign: build the background-loaded cluster, plan the three
/// deployments (automatic, star, balanced), and measure all of them under
/// increasing client load in the simulator — the workflow a Grid'5000
/// operator would script around ADePT.

#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "planner/planning_service.hpp"
#include "platform/generator.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace adept;

  std::cout << "== ADePT campaign: 120 heterogeneous nodes, DGEMM 310 ==\n\n";

  // The paper heterogenises Orsay nodes with background matrix multiplies
  // and re-measures their Linpack MFlops; the generator reproduces the
  // resulting power distribution.
  Rng rng(42);
  const Platform platform = gen::grid5000_orsay_loaded(120, rng);
  std::cout << "cluster: " << platform.size() << " nodes, power "
            << platform.min_power() << ".." << platform.max_power()
            << " MFlop/s (ratio "
            << Table::num(platform.heterogeneity_ratio(), 1) << ")\n\n";

  const MiddlewareParams params = MiddlewareParams::diet_grid5000();
  const ServiceSpec service = dgemm_service(310);

  // Plan the three §5.3 deployments concurrently through the service: one
  // request, one job per planner (the heuristic is the paper's automatic
  // deployment; star and balanced are the intuitive baselines).
  const PlanRequest request(platform, params, service);
  PlanningService planning;
  const std::vector<std::pair<std::string, std::string>> contenders{
      {"automatic", "heuristic"}, {"star", "star"}, {"balanced", "balanced"}};
  std::vector<PlanningService::Job> jobs;
  for (const auto& [label, planner] : contenders) jobs.push_back({request, planner});
  const auto planned = planning.run_batch(jobs);

  struct Entry {
    std::string name;
    PlanResult plan;
  };
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < contenders.size(); ++i) {
    if (!planned[i].ok) {
      std::cerr << "planner '" << planned[i].planner
                << "' failed: " << planned[i].error << '\n';
      return 1;
    }
    entries.push_back({contenders[i].first, planned[i].result});
  }

  Table shapes("Planned deployments");
  shapes.set_header({"deployment", "nodes", "agents", "depth", "model rho",
                     "planned in (ms)"});
  for (std::size_t i = 0; i < entries.size(); ++i)
    shapes.add_row(
        {entries[i].name,
         Table::num(static_cast<long long>(entries[i].plan.nodes_used())),
         Table::num(static_cast<long long>(entries[i].plan.hierarchy.agent_count())),
         Table::num(static_cast<long long>(entries[i].plan.hierarchy.max_depth())),
         Table::num(entries[i].plan.report.overall, 1),
         Table::num(planned[i].wall_ms, 2)});
  std::cout << shapes << '\n';

  // Measure: ramp clients and record the plateau, like the paper's client
  // scripts (one request at a time in a loop).
  sim::SimConfig config;
  config.warmup = 1.0;
  config.measure = 3.0;
  const std::vector<std::size_t> loads{1, 10, 50, 100, 200, 300};

  Table results("Measured throughput (req/s) vs concurrent clients");
  std::vector<std::string> header{"clients"};
  for (const auto& entry : entries) header.push_back(entry.name);
  results.set_header(header);

  std::vector<std::vector<sim::LoadPoint>> curves;
  for (const auto& entry : entries)
    curves.push_back(sim::load_sweep(entry.plan.hierarchy, platform, params,
                                     service, loads, config));
  for (std::size_t row = 0; row < loads.size(); ++row) {
    std::vector<std::string> cells{
        Table::num(static_cast<long long>(loads[row]))};
    for (const auto& curve : curves)
      cells.push_back(Table::num(curve[row].throughput, 1));
    results.add_row(cells);
  }
  std::cout << results << '\n';

  std::size_t winner = 0;
  for (std::size_t i = 1; i < entries.size(); ++i)
    if (sim::peak_throughput(curves[i]) > sim::peak_throughput(curves[winner]))
      winner = i;
  std::cout << "winner under measurement: " << entries[winner].name << " ("
            << Table::num(sim::peak_throughput(curves[winner]), 1)
            << " req/s peak)\n";
  return 0;
}
