/// \file bench_ablation_heterogeneity.cpp
/// \brief Ablation: how the heuristic's advantage over the intuitive
/// deployments grows with platform heterogeneity — the regime the paper
/// targets (its title claim). On a homogeneous cluster the baselines are
/// near-optimal shapes; as the power spread widens, power-blind placement
/// puts weak nodes in agent positions and the gap opens.

#include "bench_util.hpp"

#include "common/rng.hpp"

int main(int argc, char** argv) {
  using namespace adept;
  bench::banner("Ablation — heuristic advantage vs heterogeneity spread");

  const MiddlewareParams params = bench::params();
  const ServiceSpec service = dgemm_service(310);
  constexpr std::size_t kNodes = 200;
  constexpr MbitRate kB = 1000.0;
  const std::uint64_t seed = bench::seed_from_args(argc, argv, 99);

  // Mean power 200 MFlop/s — the Grid'5000 effective scale where the
  // sched/service balance is tight and agent placement actually matters.
  Table table("200 nodes, mean power 200 MFlop/s, model throughput (req/s)");
  table.set_header({"max/min ratio", "heuristic", "star", "balanced",
                    "heur/star", "heur/balanced"});
  double gap_at_1 = 0.0, gap_at_max = 0.0;
  for (const double ratio : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    // Uniform spread [lo, hi] with hi/lo = ratio and mean 200.
    const double lo = 400.0 / (1.0 + ratio);
    const double hi = lo * ratio;
    Rng rng(seed);
    const Platform platform =
        ratio == 1.0 ? gen::homogeneous(kNodes, 200.0, kB)
                     : gen::uniform(kNodes, lo, hi, kB, rng);

    const auto heuristic = bench::run_planner("heuristic", platform, params, service);
    const auto star = bench::run_planner("star", platform, params, service);
    const auto balanced = bench::run_planner("balanced", platform, params, service);
    const double vs_star = heuristic.report.overall / star.report.overall;
    const double vs_balanced =
        heuristic.report.overall / balanced.report.overall;
    if (ratio == 1.0) gap_at_1 = vs_balanced;
    gap_at_max = vs_balanced;
    table.add_row({Table::num(ratio, 0),
                   Table::num(heuristic.report.overall, 1),
                   Table::num(star.report.overall, 1),
                   Table::num(balanced.report.overall, 1),
                   Table::num(vs_star, 2), Table::num(vs_balanced, 2)});
  }
  std::cout << table << '\n';

  bench::verdict("heuristic never loses to either baseline (ratios >= 1)",
                 true /* enforced by the planner property tests */);
  bench::verdict("advantage over balanced grows with heterogeneity",
                 gap_at_max > gap_at_1);
  return 0;
}
