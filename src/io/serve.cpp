#include "io/serve.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
// Counters only (dependency-free header); the dist tier itself sits
// above io and is never pulled in here.
#include "dist/stats.hpp"
#include "io/wire.hpp"
#include "planner/planning_service.hpp"

namespace adept::io {

namespace {

/// One input line awaiting its response slot — a submitted job, a stats
/// marker, or an already-failed line (parse/deserialization error) that
/// still has to wait its turn so responses never jump the request order.
struct Pending {
  json::Value id;           ///< Echoed back; null when the client sent none.
  bool is_portfolio = false;
  bool is_stats = false;    ///< A `stats` command's response slot.
  PlanTicket plan;
  PortfolioTicket portfolio;
  std::string immediate_error;  ///< Non-empty: no job, answer is this error.
  bool counts = false;          ///< Contributes to the answered() total.
};

json::Value stats_to_json(const PlanningStats& stats) {
  json::Value out = json::Value::object();
  out.set("jobs", stats.jobs);
  out.set("failures", stats.failures);
  out.set("cancelled", stats.cancelled);
  out.set("evaluations", stats.evaluations);
  out.set("wall_ms", stats.wall_ms);
  out.set("cache_hits", stats.cache_hits);
  out.set("cache_misses", stats.cache_misses);
  out.set("cache_evictions", stats.cache_evictions);
  out.set("cache_coalesced", stats.cache_coalesced);
  // Distributed-tier counters (dist/stats.hpp): process-wide, so a serve
  // process that coordinates `--planner distributed` jobs exposes its
  // dispatch/retry/fallback history next to the planning stats.
  const dist::DistStats dist_stats = dist::stats_snapshot();
  json::Value dist = json::Value::object();
  dist.set("plans", dist_stats.plans);
  dist.set("workers_spawned", dist_stats.workers_spawned);
  dist.set("dispatched", dist_stats.dispatched);
  dist.set("responded", dist_stats.responded);
  dist.set("retried", dist_stats.retried);
  dist.set("worker_failures", dist_stats.worker_failures);
  dist.set("fallbacks", dist_stats.fallbacks);
  out.set("dist", std::move(dist));
  return out;
}

/// The per-session state: the async service plus the in-order response
/// queue. Responses are written strictly in request order, flushing each
/// line (clients pipeline against a live pipe).
///
/// A dedicated writer thread emits each response the moment its job
/// finishes — crucially, *while the reader blocks on the next input
/// line*. Without it a client that sends one request and then waits
/// (every interactive client, and the distributed tier's coordinator)
/// would deadlock against a server that only flushed responses when more
/// input arrived.
class Session {
 public:
  Session(std::ostream& out, const ServeConfig& config)
      : out_(out),
        service_(config.threads, PlannerRegistry::instance(),
                 config.cache_capacity),
        writer_([this] { writer_loop(); }) {}

  ~Session() { finish(); }

  /// Only valid after finish(): the writer thread owns the counter.
  std::size_t answered() const { return answered_; }

  void handle_line(const std::string& line) {
    json::Value request;
    try {
      request = json::parse(line);
    } catch (const Error& e) {
      queue_error(json::Value(nullptr), e.what());
      return;
    }
    if (const json::Value* cmd = request.find("cmd")) {
      try {
        handle_command(*cmd);
      } catch (const Error& e) {
        // e.g. a non-string "cmd" value — an error line, not a dead session.
        queue_error(json::Value(nullptr), e.what());
      }
      return;
    }
    submit(request);
  }

  bool quitting() const { return quitting_; }

  /// Signals end of input and blocks until every queued response has
  /// been written and the writer thread has exited. Idempotent.
  void finish() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_reading_ = true;
    }
    cv_.notify_one();
    if (writer_.joinable()) writer_.join();
  }

 private:
  void handle_command(const json::Value& cmd) {
    const std::string& name = cmd.as_string();
    if (name == "quit") {
      quitting_ = true;
      return;
    }
    if (name == "stats") {
      // Queued like any request: the writer answers it only after every
      // earlier response has been written, so the snapshot reflects all
      // previously-answered requests without racing in-flight jobs.
      Pending pending;
      pending.is_stats = true;
      enqueue(std::move(pending));
      return;
    }
    queue_error(json::Value(nullptr), "unknown command '" + name + "'");
  }

  void submit(const json::Value& request) {
    Pending pending;
    if (const json::Value* id = request.find("id")) pending.id = *id;
    try {
      // The wire deserializer gives the request an *owning* platform, so
      // the in-flight job can never outlive it.
      PlanRequest plan_request = wire::request_from_json(request);
      if (const json::Value* budget = request.find("budget_ms")) {
        const double ms = budget->as_number();
        // Upper bound (~1000 days) keeps the microsecond cast and the
        // time_point addition comfortably inside their ranges.
        ADEPT_CHECK(ms > 0.0 && ms <= 8.64e10,
                    "budget_ms must be in (0, 8.64e10]");
        plan_request.options.deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(static_cast<long long>(ms * 1000.0));
      }
      std::string planner = "heuristic";
      if (const json::Value* name = request.find("planner"))
        planner = name->as_string();
      if (planner == "portfolio") {
        pending.is_portfolio = true;
        pending.portfolio = service_.submit_portfolio(std::move(plan_request));
      } else {
        pending.plan = service_.submit(std::move(plan_request), planner);
      }
      pending.counts = true;
    } catch (const Error& e) {
      // Still queued (not written out directly): the error answer takes
      // its slot in request order like every other response.
      pending.immediate_error = e.what();
    }
    enqueue(std::move(pending));
  }

  void queue_error(json::Value id, const std::string& message) {
    Pending pending;
    pending.id = std::move(id);
    pending.immediate_error = message;
    enqueue(std::move(pending));
  }

  void enqueue(Pending pending) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_.push_back(std::move(pending));
    }
    cv_.notify_one();
  }

  /// Writer thread: pops responses strictly in request order, blocking
  /// on each job's completion, and writes them as they finish.
  void writer_loop() {
    for (;;) {
      Pending front;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return !pending_.empty() || done_reading_; });
        if (pending_.empty()) return;
        front = std::move(pending_.front());
        pending_.pop_front();
      }
      emit(front);
    }
  }

  void emit(Pending& front) {
    json::Value response = json::Value::object();
    if (front.is_stats) {
      response.set("ok", true);
      response.set("stats", stats_to_json(service_.stats()));
      write(response);
      return;
    }
    response.set("id", front.id);
    if (!front.immediate_error.empty()) {
      response.set("ok", false);
      response.set("error", front.immediate_error);
      write(response);
      return;
    }
    if (front.is_portfolio) {
      const PortfolioResult& portfolio = front.portfolio.wait();
      const bool ok = portfolio.has_winner();
      response.set("ok", ok);
      if (!ok)
        response.set("error", portfolio.runs.empty()
                                  ? "portfolio produced no runs"
                                  : portfolio.runs.front().error);
      response.set("portfolio", wire::to_json(portfolio));
    } else {
      const PlannerRun& run = front.plan.wait();
      response.set("ok", run.ok);
      if (!run.ok) response.set("error", run.error);
      response.set("run", wire::to_json(run));
    }
    write(response);
    if (front.counts) ++answered_;
  }

  void write(const json::Value& response) {
    out_ << response.dump() << '\n';
    out_.flush();
  }

  std::ostream& out_;
  PlanningService service_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> pending_;
  bool done_reading_ = false;
  std::size_t answered_ = 0;
  bool quitting_ = false;
  std::thread writer_;  ///< Last member: starts after everything it uses.
};

}  // namespace

std::size_t serve_session(std::istream& in, std::ostream& out,
                          const ServeConfig& config) {
  Session session(out, config);
  std::string line;
  while (!session.quitting() && std::getline(in, line)) {
    if (strings::trim(line).empty()) continue;
    session.handle_line(line);
  }
  session.finish();
  return session.answered();
}

}  // namespace adept::io
