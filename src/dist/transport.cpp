/// \file transport.cpp
/// \brief In-process and pipe worker transports.

#include "dist/transport.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/json.hpp"
#include "dist/stats.hpp"
// The workers speak the serve wire format; like planning_service.cpp's
// cache-key serializer, this is a deliberate .cpp-local upward reference
// into the io layer of the same static library.
#include "io/wire.hpp"
#include "model/evaluate.hpp"

namespace adept::dist {

namespace {

// ------------------------------------------------------------- in-process --

/// Answers serve-protocol lines by planning on the receiving thread.
class InProcessWorker final : public Worker {
 public:
  explicit InProcessWorker(const PlannerRegistry& registry)
      : registry_(registry) {}

  bool send(const std::string& line) final {
    if (!alive_) return false;
    inbox_.push_back(line);
    return true;
  }

  bool receive(std::string& line, double /*timeout_ms*/) final {
    if (!alive_ || inbox_.empty()) return false;
    const std::string request = std::move(inbox_.front());
    inbox_.pop_front();
    line = answer(request);
    return true;
  }

  bool alive() const final { return alive_; }
  void kill() final { alive_ = false; }

 private:
  std::string answer(const std::string& line) const {
    json::Value response = json::Value::object();
    response.set("id", json::Value(nullptr));
    try {
      const json::Value doc = json::parse(line);
      if (const json::Value* id = doc.find("id")) response.set("id", *id);
      if (const json::Value* cmd = doc.find("cmd")) {
        ADEPT_CHECK(cmd->as_string() == "stats",
                    "unknown command '" + cmd->as_string() + "'");
        response.set("ok", true);
        response.set("stats", json::Value::object());
        return response.dump();
      }
      PlannerRun run;
      run.planner = "heuristic";
      if (const json::Value* planner = doc.find("planner"))
        run.planner = planner->as_string();
      PlanRequest request = wire::request_from_json(doc);
      if (const json::Value* budget = doc.find("budget_ms")) {
        const double ms = budget->as_number();
        ADEPT_CHECK(ms > 0.0 && ms <= 8.64e10,
                    "budget_ms must be in (0, 8.64e10]");
        request.options.deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(static_cast<long long>(ms * 1000.0));
      }
      const std::uint64_t evals_before = model::evaluations_on_this_thread();
      const auto start = std::chrono::steady_clock::now();
      try {
        run.result = registry_.at(run.planner).plan(request);
        run.ok = true;
      } catch (const std::exception& e) {
        run.error = e.what();
        if (request.options.should_stop()) run.skipped = true;
      }
      run.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      run.evaluations = model::evaluations_on_this_thread() - evals_before;
      response.set("ok", run.ok);
      if (!run.ok) response.set("error", run.error);
      response.set("run", wire::to_json(run));
    } catch (const std::exception& e) {
      response.set("ok", false);
      response.set("error", e.what());
    }
    return response.dump();
  }

  const PlannerRegistry& registry_;
  std::deque<std::string> inbox_;
  bool alive_ = true;
};

// ------------------------------------------------------------------- pipes --

/// One fork/exec'd subprocess with piped stdin/stdout.
class PipeWorker final : public Worker {
 public:
  explicit PipeWorker(const std::vector<std::string>& argv) {
    int to_child[2];    // parent writes → child stdin
    int from_child[2];  // child stdout → parent reads
    ADEPT_CHECK(::pipe(to_child) == 0 && ::pipe(from_child) == 0,
                "cannot create worker pipes: " +
                    std::string(std::strerror(errno)));
    pid_ = ::fork();
    ADEPT_CHECK(pid_ >= 0,
                "cannot fork worker: " + std::string(std::strerror(errno)));
    if (pid_ == 0) {
      // Child: wire the pipes to stdio and exec. Only async-signal-safe
      // calls between fork and exec (the parent may be multithreaded).
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      std::vector<char*> args;
      args.reserve(argv.size() + 1);
      for (const std::string& arg : argv)
        args.push_back(const_cast<char*>(arg.c_str()));
      args.push_back(nullptr);
      ::execvp(args[0], args.data());
      ::_exit(127);  // exec failed; the parent sees EOF on first receive
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    in_fd_ = to_child[1];
    out_fd_ = from_child[0];
    // Keep the fds out of any worker this process forks later.
    ::fcntl(in_fd_, F_SETFD, FD_CLOEXEC);
    ::fcntl(out_fd_, F_SETFD, FD_CLOEXEC);
  }

  ~PipeWorker() final { shutdown(); }

  bool send(const std::string& line) final {
    if (!alive_ || in_fd_ < 0) return false;
    std::string framed = line;
    framed.push_back('\n');
    std::size_t written = 0;
    while (written < framed.size()) {
      const ssize_t n = ::write(in_fd_, framed.data() + written,
                                framed.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        alive_ = false;  // EPIPE: the worker died under us
        return false;
      }
      written += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool receive(std::string& line, double timeout_ms) final {
    // One absolute deadline for the whole receive. Every retry below —
    // poll() slices, EINTR on poll() or read(), partial-line reads from
    // a dribbling writer — re-checks this instant; nothing restarts the
    // budget, so a receive(t) returns within ~t no matter how the bytes
    // arrive.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(
            static_cast<long long>(std::max(0.0, timeout_ms) * 1000.0));
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      if (!alive_ || out_fd_ < 0) return false;
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline -
                                     std::chrono::steady_clock::now());
      if (remaining.count() <= 0) return false;  // timeout: hung worker
      struct pollfd pfd;
      pfd.fd = out_fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int ready = ::poll(
          &pfd, 1,
          static_cast<int>(std::min<long long>(remaining.count(), 1000)));
      if (ready < 0) {
        if (errno == EINTR) continue;
        alive_ = false;
        return false;
      }
      if (ready == 0) continue;  // re-check the deadline
      char chunk[4096];
      const ssize_t n = ::read(out_fd_, chunk, sizeof chunk);
      if (n < 0) {
        // A signal landing between poll() and read() is not a dead
        // worker; retry against the same absolute deadline.
        if (errno == EINTR) continue;
        alive_ = false;
        return false;
      }
      if (n == 0) {  // EOF: crash or exec failure
        alive_ = false;
        return false;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  bool alive() const final { return alive_; }

  void kill() final {
    if (pid_ > 0) ::kill(pid_, SIGKILL);
    alive_ = false;
  }

 private:
  /// Supervised shutdown: close stdin (serve quits on EOF), give the
  /// worker a bounded grace period, then SIGKILL; always reaps.
  void shutdown() {
    if (in_fd_ >= 0) {
      ::close(in_fd_);
      in_fd_ = -1;
    }
    if (pid_ > 0) {
      bool reaped = false;
      // Only a healthy worker earns the grace period — a failed one is
      // wedged or already dead, so go straight to SIGKILL.
      const int grace_rounds = alive_ ? 40 : 0;
      for (int round = 0; round < grace_rounds && !reaped; ++round) {
        int status = 0;
        if (::waitpid(pid_, &status, WNOHANG) == pid_) reaped = true;
        if (!reaped)
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (!reaped) {
        ::kill(pid_, SIGKILL);
        int status = 0;
        ::waitpid(pid_, &status, 0);
      }
      pid_ = -1;
    }
    if (out_fd_ >= 0) {
      ::close(out_fd_);
      out_fd_ = -1;
    }
    alive_ = false;
  }

  pid_t pid_ = -1;
  int in_fd_ = -1;
  int out_fd_ = -1;
  std::string buffer_;
  bool alive_ = true;
};

}  // namespace

std::unique_ptr<Worker> InProcessTransport::spawn() {
  ++detail::counters().workers_spawned;
  return std::make_unique<InProcessWorker>(registry_);
}

PipeTransport::PipeTransport(std::vector<std::string> argv)
    : argv_(std::move(argv)) {
  ADEPT_CHECK(!argv_.empty() && !argv_[0].empty(),
              "pipe transport needs a worker command");
  // A worker that dies mid-write must surface as an EPIPE errno on the
  // coordinator's write(), not as a process-killing SIGPIPE.
  static std::once_flag ignore_sigpipe;
  std::call_once(ignore_sigpipe, [] { ::signal(SIGPIPE, SIG_IGN); });
}

std::unique_ptr<Worker> PipeTransport::spawn() {
  auto worker = std::make_unique<PipeWorker>(argv_);
  ++detail::counters().workers_spawned;
  return worker;
}

std::vector<std::string> self_serve_command(std::size_t jobs) {
  char path[4096];
  const ssize_t n = ::readlink("/proc/self/exe", path, sizeof path - 1);
  ADEPT_CHECK(n > 0, "cannot resolve /proc/self/exe for worker spawning");
  path[n] = '\0';
  return {std::string(path), "serve", "--jobs", std::to_string(jobs),
          "--cache", "0"};
}

}  // namespace adept::dist
