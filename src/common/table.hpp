#pragma once
/// \file table.hpp
/// \brief ASCII table and CSV rendering for the experiment harnesses.
///
/// Every bench binary prints the rows/series its paper table or figure
/// reports; Table gives them a uniform, aligned rendering plus a CSV form
/// that downstream plotting scripts can consume.

#include <iosfwd>
#include <string>
#include <vector>

namespace adept {

/// Column-aligned ASCII table with an optional title. Cells are strings;
/// numeric helpers format with a fixed precision.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Formats a double with `precision` digits after the point.
  static std::string num(double value, int precision = 2);
  /// Formats an integer.
  static std::string num(long long value);
  static std::string num(int value) { return num(static_cast<long long>(value)); }
  static std::string num(std::size_t value) { return num(static_cast<long long>(value)); }

  /// Renders the aligned ASCII form.
  std::string to_string() const;
  /// Renders RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  std::string to_csv() const;

  /// Convenience: writes the ASCII form to a stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& table);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace adept
