#pragma once
/// \file parameters.hpp
/// \brief Middleware cost parameters (the paper's Table 3).
///
/// Table 3 measures, per middleware element, the computation required to
/// handle a request and the sizes of the messages exchanged:
///
/// | element | W_req (MFlop) | W_rep (MFlop)          | W_pre (MFlop) | S_rep (Mb) | S_req (Mb) |
/// |---------|---------------|------------------------|---------------|------------|------------|
/// | agent   | 1.7e-1        | 4.0e-3 + 5.4e-3·d      | —             | 5.4e-3     | 5.3e-3     |
/// | server  | —             | —                      | 6.4e-3        | 6.4e-5     | 5.3e-5     |
///
/// Note the quirk ADePT reproduces faithfully: agent-level traffic and
/// server-level traffic have *different* measured sizes (the agent-level
/// messages aggregate child replies and CORBA envelopes). Each element is
/// charged using its own row — exactly how Eqs 1–4 use S_req/S_rep.

#include "common/units.hpp"

namespace adept {

/// Cost row of Table 3 for one element class.
struct ElementCosts {
  MFlop wreq = 0.0;  ///< Computation to process one incoming request.
  MFlop wfix = 0.0;  ///< Fixed part of the reply treatment (agents).
  MFlop wsel = 0.0;  ///< Per-child part of reply treatment (agents).
  MFlop wpre = 0.0;  ///< Performance-prediction cost (servers).
  Mbit sreq = 0.0;   ///< Request message size at this element's level.
  Mbit srep = 0.0;   ///< Reply message size at this element's level.

  bool operator==(const ElementCosts&) const = default;
};

/// Full parameter set: one row per element class.
struct MiddlewareParams {
  ElementCosts agent;
  ElementCosts server;

  /// The values measured on the Lyon site of Grid'5000 (Table 3).
  static MiddlewareParams diet_grid5000();

  /// Throws adept::Error when any size is negative or all costs are zero.
  void validate() const;

  bool operator==(const MiddlewareParams&) const = default;
};

}  // namespace adept
