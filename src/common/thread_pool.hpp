#pragma once
/// \file thread_pool.hpp
/// \brief Fixed-size thread pool and a blocking parallel_for.
///
/// The experiment harnesses run one independent discrete-event simulation
/// per load level; those simulations share nothing, so a static block
/// partition over a fixed pool is the right tool (no work stealing needed:
/// per-item cost is balanced by interleaving indices across workers).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace adept {

/// Simple FIFO thread pool. Tasks may not throw; exceptions escaping a task
/// terminate the program (tasks are expected to capture and report errors).
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void submit(std::function<void()> task);

  /// Runs body(i) for i in [0, count) across the pool and returns when
  /// every index has finished. The *calling* thread participates in the
  /// work, so the call makes progress even when every worker is busy —
  /// which makes it safe to use from inside a task already running on
  /// this pool (the planners fan their per-k sweeps out this way while
  /// themselves executing as PlanningService jobs). Indices are claimed
  /// dynamically from a shared counter. If `body` throws, remaining
  /// indices are skipped and the first exception is rethrown on the
  /// caller — only after every in-flight index has finished, so the
  /// body's captures never outlive the call.
  void for_each(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Blocks until all submitted tasks have finished.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for i in [0, count) across `threads` workers (0 = all cores)
/// and blocks until completion. Indices are interleaved (worker k takes
/// i ≡ k mod T), which balances monotone per-index costs such as
/// simulations whose duration grows with the load level.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace adept
