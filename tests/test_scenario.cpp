/// \file test_scenario.cpp
/// \brief Churn scenario engine: catalog presets, deterministic event
/// expansion, state application, replay exactness, and wire round-trips.

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "io/wire.hpp"
#include "platform/generator.hpp"
#include "sim/scenario.hpp"

namespace adept {
namespace {

using sim::MutationEvent;
using sim::MutationKind;
using sim::Scenario;
using sim::ScenarioEngine;

/// Small, fast scenario exercising every stochastic process.
Scenario busy_scenario(std::uint64_t seed = 5) {
  Scenario sc;
  sc.name = "test-busy";
  sc.seed = seed;
  sc.duration = 10.0;
  sc.platform = {"uniform", 30, 3, {}};
  sc.churn.crash_rate = 2.0;
  sc.churn.rejoin_after_lo = 1.0;
  sc.churn.rejoin_after_hi = 3.0;
  sc.churn.leave_rate = 0.2;
  sc.churn.join_rate = 1.0;
  sc.churn.join_power_lo = 100.0;
  sc.churn.join_power_hi = 300.0;
  sc.churn.degrade_rate = 2.0;
  sc.churn.degrade_for_lo = 1.0;
  sc.churn.degrade_for_hi = 2.0;
  sc.churn.link_drop_rate = 1.0;
  sc.churn.link_drop_for_lo = 1.0;
  sc.churn.link_drop_for_hi = 2.0;
  sc.demand = {200.0, 150.0, 5.0, 0.5};
  return sc;
}

// ---------------------------------------------------------------- catalog --

TEST(PlatformCatalog, PresetsAreDeterministicAndValid) {
  for (const auto& entry : gen::platform_catalog()) {
    const Platform a = gen::catalog_platform(entry.name, 40, 5);
    const Platform b = gen::catalog_platform(entry.name, 40, 5);
    EXPECT_EQ(a, b) << entry.name;
    EXPECT_EQ(a.size(), 40u) << entry.name;
    EXPECT_GT(a.total_power(), 0.0) << entry.name;
  }
}

TEST(PlatformCatalog, SeedChangesStochasticPresets) {
  EXPECT_NE(gen::catalog_platform("g5k-multi-cluster", 40, 5),
            gen::catalog_platform("g5k-multi-cluster", 40, 6));
}

TEST(PlatformCatalog, WanClustersHaveHeterogeneousLinks) {
  const Platform wan = gen::catalog_platform("wan-clusters", 40, 5);
  EXPECT_FALSE(wan.has_homogeneous_links());
}

TEST(PlatformCatalog, UnknownPresetThrows) {
  EXPECT_THROW(gen::catalog_platform("no-such-preset", 10, 1), Error);
}

TEST(ScenarioCatalog, EveryEntryBuilds) {
  for (const auto& entry : sim::scenario_catalog()) {
    const Scenario sc = sim::catalog_scenario(entry.name);
    EXPECT_EQ(sc.name, entry.name);
    EXPECT_NO_THROW({ Platform p = sc.platform.build(); (void)p; });
  }
}

TEST(ScenarioCatalog, UnknownScenarioThrows) {
  EXPECT_THROW(sim::catalog_scenario("no-such-scenario"), Error);
}

TEST(MutationKinds, NamesRoundTrip) {
  for (MutationKind kind :
       {MutationKind::Join, MutationKind::Leave, MutationKind::Crash,
        MutationKind::Rejoin, MutationKind::SetPower, MutationKind::SetLink,
        MutationKind::Demand})
    EXPECT_EQ(sim::mutation_kind_from_name(sim::mutation_kind_name(kind)),
              kind);
  EXPECT_THROW(sim::mutation_kind_from_name("explode"), Error);
}

// -------------------------------------------------------------- expansion --

TEST(ScenarioEngine, ExpansionIsDeterministic) {
  const ScenarioEngine a(busy_scenario());
  const ScenarioEngine b(busy_scenario());
  ASSERT_FALSE(a.trace().empty());
  EXPECT_EQ(a.trace(), b.trace());
}

TEST(ScenarioEngine, SeedChangesTheTrace) {
  EXPECT_NE(ScenarioEngine(busy_scenario(5)).trace(),
            ScenarioEngine(busy_scenario(6)).trace());
}

TEST(ScenarioEngine, TraceIsTimeOrdered) {
  const ScenarioEngine engine(busy_scenario());
  for (std::size_t i = 1; i < engine.trace().size(); ++i)
    EXPECT_LE(engine.trace()[i - 1].time, engine.trace()[i].time);
}

TEST(ScenarioEngine, ExpansionCoversEveryProcess) {
  const ScenarioEngine engine(busy_scenario());
  std::size_t by_kind[7] = {};
  for (const MutationEvent& event : engine.trace())
    ++by_kind[static_cast<std::size_t>(event.kind)];
  EXPECT_GT(by_kind[static_cast<std::size_t>(MutationKind::Crash)], 0u);
  EXPECT_GT(by_kind[static_cast<std::size_t>(MutationKind::Rejoin)], 0u);
  EXPECT_GT(by_kind[static_cast<std::size_t>(MutationKind::Join)], 0u);
  EXPECT_GT(by_kind[static_cast<std::size_t>(MutationKind::SetPower)], 0u);
  EXPECT_GT(by_kind[static_cast<std::size_t>(MutationKind::SetLink)], 0u);
  EXPECT_GT(by_kind[static_cast<std::size_t>(MutationKind::Demand)], 0u);
}

TEST(ScenarioEngine, SteadyScenarioHasNoEvents) {
  const ScenarioEngine engine(sim::catalog_scenario("g5k-310-steady"));
  EXPECT_TRUE(engine.trace().empty());
  EXPECT_TRUE(engine.done());
}

// ------------------------------------------------------- state application --

TEST(ScenarioEngine, ScriptedEventsMutateTheState) {
  Scenario sc;
  sc.name = "scripted";
  sc.duration = 10.0;
  sc.platform.inline_platform = gen::homogeneous(3, 100.0, 1000.0);
  MutationEvent join;
  join.time = 1.0;
  join.kind = MutationKind::Join;
  join.node = 3;
  join.value = 250.0;
  join.name = "fresh";
  MutationEvent crash;
  crash.time = 2.0;
  crash.kind = MutationKind::Crash;
  crash.node = 1;
  MutationEvent power;
  power.time = 3.0;
  power.kind = MutationKind::SetPower;
  power.node = 0;
  power.value = 40.0;
  MutationEvent link;
  link.time = 4.0;
  link.kind = MutationKind::SetLink;
  link.node = 2;
  link.value = 100.0;
  MutationEvent demand;
  demand.time = 5.0;
  demand.kind = MutationKind::Demand;
  demand.value = 77.0;
  MutationEvent rejoin;
  rejoin.time = 6.0;
  rejoin.kind = MutationKind::Rejoin;
  rejoin.node = 1;
  sc.scripted = {join, crash, power, link, demand, rejoin};

  ScenarioEngine engine(sc);
  EXPECT_EQ(engine.platform().size(), 3u);
  EXPECT_EQ(engine.demand(), sim::kNoDemandCap);

  EXPECT_EQ(engine.step().kind, MutationKind::Join);
  EXPECT_EQ(engine.platform().size(), 4u);
  EXPECT_EQ(engine.platform().node(3).name, "fresh");

  EXPECT_EQ(engine.step().kind, MutationKind::Crash);
  EXPECT_TRUE(engine.down().contains(1));
  EXPECT_DOUBLE_EQ(engine.alive_power(), 100.0 + 100.0 + 250.0);

  engine.step();
  EXPECT_DOUBLE_EQ(engine.platform().power(0), 40.0);

  engine.step();
  EXPECT_DOUBLE_EQ(engine.platform().link_bandwidth(2), 100.0);

  engine.step();
  EXPECT_DOUBLE_EQ(engine.demand(), 77.0);

  engine.step();
  EXPECT_TRUE(engine.down().empty());
  EXPECT_TRUE(engine.done());
  EXPECT_THROW(engine.step(), Error);
}

TEST(ScenarioEngine, ScriptedJoinsAreDegradableAndRestoreTheirOwnNominal) {
  // Regression: the expansion used to track nominal powers/links only for
  // stochastic joins, so a degrade picking a *scripted* joiner read past
  // the nominal arrays (and restores after later stochastic joins used a
  // neighbour's nominal).
  Scenario sc;
  sc.name = "scripted-join-degrade";
  sc.seed = 3;
  sc.duration = 20.0;
  sc.platform.inline_platform = gen::homogeneous(4, 100.0, 1000.0);
  MutationEvent join;
  join.time = 0.1;
  join.kind = MutationKind::Join;
  join.node = 4;
  join.value = 500.0;
  join.name = "late";
  sc.scripted = {join};
  sc.churn.degrade_rate = 3.0;
  sc.churn.degrade_scale_lo = 0.5;
  sc.churn.degrade_scale_hi = 0.5;
  sc.churn.degrade_for_lo = 1.0;
  sc.churn.degrade_for_hi = 2.0;

  const ScenarioEngine engine(sc);
  std::size_t touched = 0;
  for (const MutationEvent& event : engine.trace()) {
    if (event.kind != MutationKind::SetPower || event.node != 4) continue;
    ++touched;
    // Degrades halve the joiner's own 500 MFlop nominal; restores bring
    // exactly it back.
    EXPECT_TRUE(event.value == 250.0 || event.value == 500.0)
        << "event value " << event.value;
  }
  EXPECT_GT(touched, 0u);
}

TEST(ScenarioEngine, DownNodesStayInThePlatform) {
  Scenario sc = busy_scenario();
  ScenarioEngine engine(sc);
  const std::size_t initial = engine.platform().size();
  std::size_t joins = 0;
  while (!engine.done())
    if (engine.step().kind == MutationKind::Join) ++joins;
  EXPECT_EQ(engine.platform().size(), initial + joins);
}

// ----------------------------------------------------------------- replay --

TEST(ScenarioEngine, ReplayReproducesEveryStateBitForBit) {
  const Scenario sc = busy_scenario();
  ScenarioEngine recorded(sc);
  ScenarioEngine replayed(sc, recorded.trace());
  while (!recorded.done()) {
    EXPECT_EQ(recorded.step(), replayed.step());
    ASSERT_TRUE(recorded.platform() == replayed.platform());
    ASSERT_EQ(recorded.down(), replayed.down());
    ASSERT_EQ(recorded.demand(), replayed.demand());
  }
  EXPECT_TRUE(replayed.done());
}

TEST(ScenarioEngine, ReplayRejectsForeignTraces) {
  const ScenarioEngine big(busy_scenario());
  Scenario small;
  small.name = "small";
  small.duration = 10.0;
  small.platform.inline_platform = gen::homogeneous(2, 100.0, 1000.0);
  // busy_scenario's trace targets nodes a 2-node platform does not have.
  EXPECT_THROW(ScenarioEngine(small, big.trace()), Error);
}

// ------------------------------------------------------------------- wire --

TEST(ScenarioWire, MutationEventRoundTrips) {
  MutationEvent event;
  event.time = 1.25;
  event.kind = MutationKind::Join;
  event.node = 17;
  event.value = 123.456;
  event.link = 100.0;
  event.name = "fresh-1";
  const auto back = wire::mutation_event_from_json(
      json::parse(wire::to_json(event).dump()));
  EXPECT_EQ(back, event);

  MutationEvent demand;
  demand.kind = MutationKind::Demand;
  demand.value = sim::kNoDemandCap;  // Infinity travels as "unlimited".
  const auto demand_back = wire::mutation_event_from_json(
      json::parse(wire::to_json(demand).dump()));
  EXPECT_EQ(demand_back, demand);
}

TEST(ScenarioWire, ExpandedTraceRoundTripsExactly) {
  const ScenarioEngine engine(busy_scenario());
  const auto back = wire::trace_from_json(
      json::parse(wire::trace_to_json(engine.trace()).dump()));
  EXPECT_EQ(back, engine.trace());
}

TEST(ScenarioWire, ScenarioRoundTripsWithPresetPlatform) {
  const Scenario sc = busy_scenario();
  const Scenario back =
      wire::scenario_from_json(json::parse(wire::to_json(sc).dump()));
  EXPECT_EQ(back, sc);
  // And the round-tripped scenario expands to the identical trace.
  EXPECT_EQ(ScenarioEngine(back).trace(), ScenarioEngine(sc).trace());
}

TEST(ScenarioWire, ScenarioRoundTripsWithInlinePlatform) {
  Scenario sc;
  sc.name = "inline";
  sc.seed = 9;
  sc.duration = 5.0;
  Rng rng(4);
  sc.platform.inline_platform =
      gen::with_heterogeneous_links(gen::uniform(8, 100, 900, 1000, rng),
                                    100, 1000, rng);
  sc.churn.crash_rate = 1.0;
  MutationEvent demand;
  demand.time = 0.5;
  demand.kind = MutationKind::Demand;
  demand.value = 42.0;
  sc.scripted = {demand};
  const Scenario back =
      wire::scenario_from_json(json::parse(wire::to_json(sc).dump()));
  EXPECT_EQ(back, sc);
}

TEST(ScenarioEngine, RejectsHostileNumericFields) {
  // A deserialized scenario goes through no wire-level range checks, so
  // the engine must refuse fields that would hang or overflow expansion.
  Scenario tiny_step = busy_scenario();
  tiny_step.demand.step = 1e-300;
  EXPECT_THROW(ScenarioEngine{tiny_step}, Error);

  Scenario zero_period = busy_scenario();
  zero_period.demand.period = 0.0;
  EXPECT_THROW(ScenarioEngine{zero_period}, Error);

  Scenario wild_rate = busy_scenario();
  wild_rate.churn.crash_rate = 1e12;
  EXPECT_THROW(ScenarioEngine{wild_rate}, Error);

  Scenario nan_duration = busy_scenario();
  nan_duration.duration = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(ScenarioEngine{nan_duration}, Error);

  Scenario bad_scale = busy_scenario();
  bad_scale.churn.degrade_scale_lo = -0.5;
  EXPECT_THROW(ScenarioEngine{bad_scale}, Error);
}

TEST(ScenarioWire, RejectsNegativeOrFractionalSeeds) {
  json::Value doc = wire::to_json(busy_scenario());
  doc.set("seed", -1);
  EXPECT_THROW(wire::scenario_from_json(doc), Error);
  doc.set("seed", 1.5);
  EXPECT_THROW(wire::scenario_from_json(doc), Error);
}

TEST(ScenarioWire, RecordingRoundTripsAndReplays) {
  const Scenario sc = busy_scenario();
  ScenarioEngine engine(sc);
  const sim::ScenarioRecording recording{sc, engine.trace()};
  const sim::ScenarioRecording back =
      wire::recording_from_json(json::parse(wire::to_json(recording).dump()));
  EXPECT_EQ(back, recording);
  ScenarioEngine replayed(back.scenario, back.trace);
  while (!replayed.done()) replayed.step();
  while (!engine.done()) engine.step();
  EXPECT_TRUE(replayed.platform() == engine.platform());
}

}  // namespace
}  // namespace adept
