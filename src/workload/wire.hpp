#pragma once
/// \file wire.hpp
/// \brief Synthetic wire format for middleware messages.
///
/// The paper obtained S_req and S_rep by capturing real agent/server
/// traffic with tcpdump and measuring complete message sizes (headers
/// included) in Ethereal. ADePT cannot capture Grid'5000 traffic, so it
/// encodes the *actual content* of each message kind in a CORBA-GIOP-like
/// binary format and measures the encoding — the same quantity obtained
/// by a different (deterministic) route. Agent-level messages carry the
/// full request context and the aggregated child responses, hence are two
/// orders of magnitude larger than the compact server-level exchanges,
/// which is exactly the asymmetry Table 3 reports.

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace adept::workload {

/// Message kinds whose sizes the model consumes.
enum class MessageKind {
  AgentRequest,   ///< Client→agent / agent→agent scheduling request.
  AgentReply,     ///< Agent→parent aggregated scheduling reply.
  ServerRequest,  ///< Agent→server prediction request (compact).
  ServerReply,    ///< Server→agent prediction reply (compact).
};

/// Scheduling request as carried at agent level.
struct AgentRequestMessage {
  std::uint64_t request_id = 0;
  std::string client_host;                ///< e.g. "lyon-17.grid5000.fr".
  std::string service_name;               ///< e.g. "dgemm-310".
  std::vector<std::string> routing_path;  ///< Agents traversed so far.
  std::vector<double> argument_descriptor;///< Problem-shape metadata.
};

/// One candidate row of an aggregated agent reply.
struct CandidateEntry {
  std::string server_host;
  double predicted_seconds = 0.0;
  double load = 0.0;
};

/// Aggregated scheduling reply as carried at agent level.
struct AgentReplyMessage {
  std::uint64_t request_id = 0;
  std::vector<CandidateEntry> candidates;
};

/// Serialises a message into GIOP-framed bytes (12-byte header, length-
/// prefixed strings, little-endian scalars).
std::vector<std::uint8_t> encode(const AgentRequestMessage& message);
std::vector<std::uint8_t> encode(const AgentReplyMessage& message);

/// Decodes bytes produced by the matching encode(); throws adept::Error
/// on malformed input. Used by the round-trip tests.
AgentRequestMessage decode_agent_request(const std::vector<std::uint8_t>& bytes);
AgentReplyMessage decode_agent_reply(const std::vector<std::uint8_t>& bytes);

/// "Measures" the wire size of a representative message of each kind
/// (Mbit), the way the paper measured S_req / S_rep. Representative
/// content: a DGEMM request from one client through a 2-level hierarchy,
/// and a reply aggregating `fanout` candidate servers (default matches
/// the degree used in §5.1's measurement deployment).
Mbit representative_size(MessageKind kind, std::size_t fanout = 1);

}  // namespace adept::workload
