/// \file capacity_planning.cpp
/// \brief Demand-driven provisioning with Algorithm 1's demand parameter:
/// "we expect N requests per second — how few machines can serve it?"
/// The paper's tie-break rule (fewest resources among equal-throughput
/// deployments) is exactly what a shared-cluster operator wants.

#include <iostream>

#include "common/table.hpp"
#include "planner/planning_service.hpp"
#include "platform/generator.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace adept;

  std::cout << "== ADePT capacity planning: provisioning for a target load ==\n\n";

  const Platform platform = gen::homogeneous(80, 1000.0, 1000.0);
  const MiddlewareParams params = MiddlewareParams::diet_grid5000();
  const ServiceSpec service = dgemm_service(400);  // 128 MFlop per request

  // One PlanningService answers every provisioning question; the demand
  // sweep is a batch of independent requests planned in parallel.
  PlanningService planning;

  // What is the ceiling of this pool?
  const auto ceiling =
      planning.run(PlanRequest(platform, params, service), "heuristic");
  if (!ceiling.ok) {
    std::cerr << "planning failed: " << ceiling.error << '\n';
    return 1;
  }
  std::cout << "pool ceiling: " << Table::num(ceiling.result.report.overall, 1)
            << " req/s using " << ceiling.result.nodes_used() << " nodes ("
            << Table::num(ceiling.wall_ms, 1) << " ms to plan)\n\n";

  const std::vector<double> demands{5.0, 15.0, 30.0, 60.0, 120.0};
  std::vector<PlanningService::Job> jobs;
  for (const double demand : demands) {
    PlanRequest request(platform, params, service);
    request.options.demand = demand;
    jobs.push_back({request, "heuristic"});
  }
  const auto runs = planning.run_batch(jobs);

  Table table("Provisioning plans per target demand");
  table.set_header({"demand (req/s)", "nodes", "agents", "servers",
                    "predicted rho", "simulated rho"});
  sim::SimConfig config;
  config.warmup = 1.0;
  config.measure = 3.0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (!runs[i].ok) {
      std::cerr << "planning failed: " << runs[i].error << '\n';
      return 1;
    }
    const auto& plan = runs[i].result;
    const auto run = sim::simulate(plan.hierarchy, platform, params, service,
                                   /*clients=*/120, config);
    table.add_row({Table::num(demands[i], 0),
                   Table::num(static_cast<long long>(plan.nodes_used())),
                   Table::num(static_cast<long long>(plan.hierarchy.agent_count())),
                   Table::num(static_cast<long long>(plan.hierarchy.server_count())),
                   Table::num(plan.report.overall, 1),
                   Table::num(run.throughput, 1)});
  }
  std::cout << table << '\n';

  std::cout << "Reading: each plan commits just enough servers for its\n"
               "demand; the predicted and simulated rates agree because the\n"
               "workload grain keeps middleware overheads negligible.\n";
  return 0;
}
