#pragma once
/// \file hierarchy.hpp
/// \brief The agent/server tree the paper plans and deploys.
///
/// Structure rules (§1 of the paper):
///   - a server has exactly one parent, always an agent, and no children;
///   - the root agent has no parent and one or more children;
///   - a non-root agent has exactly one parent and two or more children
///     (an agent with a single child would add scheduling cost without
///     fan-out benefit);
///   - agents and servers do not share resources: each platform node is
///     used by at most one element.
///
/// Hierarchy is a mutable builder plus query interface. Intermediate
/// construction states may violate the ≥2-children rule; `validate()`
/// checks the final form.

#include <cstddef>
#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace adept {

/// Role of a hierarchy element.
enum class Role { Agent, Server };

/// Returns "agent" or "server".
const char* role_name(Role role);

/// A deployment hierarchy over platform nodes.
class Hierarchy {
 public:
  /// Index of an element within this hierarchy.
  using Index = std::size_t;
  static constexpr Index npos = static_cast<Index>(-1);

  struct Element {
    NodeId node = 0;            ///< Platform node hosting this element.
    Role role = Role::Server;
    Index parent = npos;        ///< npos for the root.
    std::vector<Index> children;
  };

  Hierarchy() = default;

  /// Restores a hierarchy from a full element list (the wire
  /// deserializer's path). Unlike the incremental builders this accepts
  /// any internally consistent element vector — including index orders
  /// only reachable through reparent()/convert_to_agent() — so a
  /// serialized hierarchy round-trips to an operator==-identical value.
  /// Throws adept::Error when parent/children links are inconsistent.
  static Hierarchy from_elements(std::vector<Element> elements);

  /// Reserves element capacity (planners building known-size trees).
  void reserve(std::size_t elements) { elements_.reserve(elements); }

  /// Creates the root agent on `node`. Must be the first element added.
  Index add_root(NodeId node);
  /// Adds an agent under `parent` (which must be an agent).
  Index add_agent(Index parent, NodeId node);
  /// Adds a server under `parent` (which must be an agent).
  Index add_server(Index parent, NodeId node);

  /// The paper's `shift_nodes`: converts a (leaf) server into an agent so
  /// children can be attached to it.
  void convert_to_agent(Index element);

  /// Detaches the last-added child of `parent` (the paper's
  /// "remove 1 child from the last agent" backtracking step). The child
  /// must be a leaf.
  void remove_last_child(Index parent);

  /// Moves `child` (any non-root element) under `new_parent` (an agent
  /// that is not a descendant of `child`). Used by the bottleneck
  /// improver to relieve a saturated agent.
  void reparent(Index child, Index new_parent);

  /// Re-hosts an element on a different platform node, keeping the tree
  /// shape. Used by the link-aware refinement pass to swap node
  /// assignments; the caller is responsible for overall node uniqueness
  /// (validate() still checks it).
  void replace_node(Index element, NodeId node);

  bool empty() const { return elements_.empty(); }
  std::size_t size() const { return elements_.size(); }
  Index root() const;
  const Element& element(Index index) const;

  bool is_agent(Index index) const { return element(index).role == Role::Agent; }
  /// Number of children of an element (the paper's d_i for agents).
  std::size_t degree(Index index) const { return element(index).children.size(); }
  NodeId node_of(Index index) const { return element(index).node; }

  /// All agent element indices, in insertion order.
  std::vector<Index> agents() const;
  /// All server element indices, in insertion order.
  std::vector<Index> servers() const;
  std::size_t agent_count() const;
  std::size_t server_count() const;

  /// Platform nodes referenced by this hierarchy, in element order.
  std::vector<NodeId> used_nodes() const;

  /// Depth of an element (root = 0).
  std::size_t depth(Index index) const;
  /// Maximum element depth; a star hierarchy has max_depth() == 1.
  std::size_t max_depth() const;
  /// Largest agent degree.
  std::size_t max_degree() const;

  /// Structural problems found, as human-readable strings; empty when the
  /// hierarchy satisfies all the paper's rules. When `platform` is given,
  /// node ids are also range-checked against it.
  std::vector<std::string> validate(const Platform* platform = nullptr) const;
  /// Throws adept::Error listing all problems when validate() is non-empty.
  void validate_or_throw(const Platform* platform = nullptr) const;

  bool operator==(const Hierarchy& other) const;

 private:
  Index add_element(Index parent, NodeId node, Role role);

  std::vector<Element> elements_;
};

}  // namespace adept
