#pragma once
/// \file stats.hpp
/// \brief Process-wide counters of the distributed planning tier.
///
/// Coordinators and worker pools are short-lived (one per CLI run, one
/// per registry plan() call), so their observability lives in one
/// process-wide set of monotone atomic counters — the same lifetime
/// shape PlanningStats has per service. The serve layer snapshots them
/// into the `dist` section of its `stats` response; tests reset them
/// around a scenario to assert exact fault-path counts. This header is
/// dependency-free on purpose: io/serve.cpp includes it without pulling
/// the transport machinery into the io layer.

#include <atomic>
#include <cstdint>

namespace adept::dist {

/// Point-in-time snapshot of the distributed tier's lifetime counters.
struct DistStats {
  std::uint64_t plans = 0;        ///< Coordinator plan() calls.
  std::uint64_t dispatched = 0;   ///< Shard requests sent to workers.
  std::uint64_t responded = 0;    ///< Well-formed shard responses received.
  std::uint64_t retried = 0;      ///< Shards re-dispatched after a failure.
  std::uint64_t worker_failures = 0;  ///< Workers marked failed (crash,
                                      ///  hang, malformed response).
  std::uint64_t fallbacks = 0;    ///< Shards planned in-process because no
                                  ///  healthy worker could answer.
  std::uint64_t workers_spawned = 0;  ///< Workers ever spawned.
  std::uint64_t workers_respawned = 0;  ///< Failed workers replaced by the
                                        ///  supervised respawn loop.
  std::uint64_t respawn_failures = 0;   ///< Respawn attempts whose spawn
                                        ///  itself failed (backoff escalates).
  std::uint64_t health_checks = 0;      ///< Fleet health-check passes run.
};

/// Snapshot of the process-wide counters.
DistStats stats_snapshot();

/// Resets every counter to zero (tests only — the serve `stats` contract
/// is monotone counters, like PlanningStats).
void reset_stats_for_test();

namespace detail {

/// The live counters; increment directly (relaxed ordering — these are
/// statistics, not synchronisation).
struct Counters {
  std::atomic<std::uint64_t> plans{0};
  std::atomic<std::uint64_t> dispatched{0};
  std::atomic<std::uint64_t> responded{0};
  std::atomic<std::uint64_t> retried{0};
  std::atomic<std::uint64_t> worker_failures{0};
  std::atomic<std::uint64_t> fallbacks{0};
  std::atomic<std::uint64_t> workers_spawned{0};
  std::atomic<std::uint64_t> workers_respawned{0};
  std::atomic<std::uint64_t> respawn_failures{0};
  std::atomic<std::uint64_t> health_checks{0};
};
Counters& counters();

}  // namespace detail

}  // namespace adept::dist
