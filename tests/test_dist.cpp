/// \file test_dist.cpp
/// \brief The distributed planning tier: bit-identity with the local
/// sharded planner (in-process fleets, real serve subprocesses, any
/// worker count, recursive stitching), and fault injection — crashed,
/// hung, and garbage-spewing workers must cost retries and fallbacks,
/// never the request or a single bit of the result.
///
/// Pipe-based tests spawn real subprocesses: shell one-liners rig the
/// faults, and ADEPT_CLI_BINARY (a compile definition pointing at the
/// built `adept` binary) provides genuine serve workers. The platform,
/// request, fault-command and identity helpers live in
/// tests/dist_test_util.hpp, shared with the socket suite.

#include "dist/coordinator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/stats.hpp"
#include "dist/supervisor.hpp"
#include "dist/transport.hpp"
#include "dist/worker_pool.hpp"
#include "dist_test_util.hpp"
#include "planner/planner.hpp"
#include "planner/shard_cache.hpp"
#include "planner/sharded.hpp"
#include "planning_test_util.hpp"
#include "platform/partition.hpp"

namespace adept {
namespace {

using test_util::run_planner;
using namespace dist;
using namespace dist_test;

// ------------------------------------------------------- bit-identity --

TEST(Dist, InProcessFleetMatchesShardedForAnyWorkerCount) {
  const Platform platform = multi_cluster(160);
  const PlanResult sharded =
      run_planner("sharded", platform, dgemm_service(310));
  for (const std::size_t workers : {1u, 2u, 5u}) {
    InProcessTransport transport;
    CoordinatorConfig config;
    config.workers = workers;
    Coordinator coordinator(transport, config);
    const PlanResult distributed = coordinator.plan(make_request(platform));
    expect_identical(distributed, sharded,
                     std::to_string(workers) + " workers");
  }
}

TEST(Dist, RegistryEntryMatchesShardedAndStaysOutOfPortfolios) {
  const Platform platform = multi_cluster(120, 7);
  expect_identical(run_planner("distributed", platform, dgemm_service(310)),
                   run_planner("sharded", platform, dgemm_service(310)),
                   "registry dispatch");
  const IPlanner& planner = PlannerRegistry::instance().at("distributed");
  EXPECT_TRUE(planner.info().caps.shard_aware);
  for (const IPlanner* member :
       PlannerRegistry::instance().applicable(make_request(platform)))
    EXPECT_NE(member->info().name, "distributed");
}

TEST(Dist, RealServeSubprocessesMatchSharded) {
  const Platform platform = multi_cluster(160);
  PipeTransport transport(serve_command());
  CoordinatorConfig config;
  config.workers = 2;
  Coordinator coordinator(transport, config);
  const PlanResult distributed = coordinator.plan(make_request(platform));
  expect_identical(distributed,
                   run_planner("sharded", platform, dgemm_service(310)),
                   "pipe fleet of real serve workers");
}

TEST(Dist, ExplicitShardCountAndDemandTravelToWorkers) {
  const Platform platform = multi_cluster(140, 3);
  PlanOptions options;
  options.shards = 5;
  options.demand = 40.0;
  InProcessTransport transport;
  Coordinator coordinator(transport);
  const PlanResult distributed =
      coordinator.plan(make_request(platform, options));
  expect_identical(distributed,
                   run_planner("sharded", platform, dgemm_service(310),
                               options),
                   "shards=5 demand=40");
}

TEST(Dist, RecursiveStitchMatchesTheLocalCoreAtTheSameFanout) {
  const Platform platform = multi_cluster(160);
  PlanOptions options;
  options.shards = 9;
  // Local reference: the shared core at fanout 3 with the serial leaf
  // path the in-process worker also runs.
  const plat::Partition partition = plat::partition_platform(platform, 9);
  const auto leaves_fn =
      [&platform, &options](const std::vector<std::vector<NodeId>>& leaves) {
        std::vector<PlanResult> plans;
        for (const std::vector<NodeId>& ids : leaves) {
          const Platform sub = platform.subset(ids);
          PlanResult plan = plan_heterogeneous(sub, kParams,
                                               dgemm_service(310),
                                               options.demand, nullptr,
                                               &options);
          for (Hierarchy::Index e = 0; e < plan.hierarchy.size(); ++e)
            plan.hierarchy.replace_node(e, ids[plan.hierarchy.node_of(e)]);
          plans.push_back(std::move(plan));
        }
        return plans;
      };
  const PlanResult local =
      plan_sharded_with(platform, kParams, dgemm_service(310), options,
                        partition, 3, leaves_fn);
  // 9 shards over fanout 3 forces at least one recursive stitch level.
  bool recursed = false;
  for (const std::string& line : local.trace)
    recursed = recursed || line.find("stitch level") != std::string::npos;
  EXPECT_TRUE(recursed) << "expected a recursive stitch in the trace";

  InProcessTransport transport;
  CoordinatorConfig config;
  config.workers = 3;
  config.stitch_fanout = 3;
  Coordinator coordinator(transport, config);
  const PlanResult distributed =
      coordinator.plan(make_request(platform, options));
  expect_identical(distributed, local, "recursive stitch, fanout 3");
  EXPECT_TRUE(distributed.hierarchy.validate().empty());
}

// ----------------------------------------------------- streaming stitch --

/// Serial reference leaf plans in platform ids, one per shard — the
/// exact computation the local sharded core's leaf path runs.
std::vector<PlanResult> serial_leaf_plans(
    const Platform& platform, const PlanOptions& options,
    const std::vector<std::vector<NodeId>>& leaves) {
  std::vector<PlanResult> plans;
  plans.reserve(leaves.size());
  for (const std::vector<NodeId>& ids : leaves) {
    const Platform sub = platform.subset(ids);
    PlanResult plan = plan_heterogeneous(sub, kParams, dgemm_service(310),
                                         options.demand, nullptr, &options);
    for (Hierarchy::Index e = 0; e < plan.hierarchy.size(); ++e)
      plan.hierarchy.replace_node(e, ids[plan.hierarchy.node_of(e)]);
    plans.push_back(std::move(plan));
  }
  return plans;
}

TEST(Dist, StreamedArrivalOrderCannotChangeTheResult) {
  // Determinism rule #7, streaming extension: the stitch folds shard
  // plans in whatever order they arrive, and the result — hierarchy,
  // report, trace — must be bit-identical to the batch path for every
  // ordering. 9 shards over fanout 3 force recursive stitch levels, so
  // out-of-order arrival exercises group completion mid-stream.
  const Platform platform = multi_cluster(160);
  PlanOptions options;
  options.shards = 9;
  const plat::Partition partition = plat::partition_platform(platform, 9);
  const auto batch_fn =
      [&platform, &options](const std::vector<std::vector<NodeId>>& leaves) {
        return serial_leaf_plans(platform, options, leaves);
      };
  const PlanResult batch =
      plan_sharded_with(platform, kParams, dgemm_service(310), options,
                        partition, 3, batch_fn);

  for (int mode = 0; mode < 3; ++mode) {
    const auto stream_fn =
        [&platform, &options, mode](
            const std::vector<std::vector<NodeId>>& leaves,
            const ShardResultSink& ready) {
          std::vector<PlanResult> plans =
              serial_leaf_plans(platform, options, leaves);
          std::vector<std::size_t> order(plans.size());
          for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
          if (mode == 0) {
            std::reverse(order.begin(), order.end());
          } else if (mode == 1) {
            std::rotate(order.begin(), order.begin() + order.size() / 2,
                        order.end());
          } else {
            std::mt19937 rng(20080615);
            std::shuffle(order.begin(), order.end(), rng);
          }
          for (const std::size_t i : order) ready(i, std::move(plans[i]));
        };
    const PlanResult streamed =
        plan_sharded_streamed(platform, kParams, dgemm_service(310), options,
                              partition, 3, stream_fn);
    expect_identical(streamed, batch, "arrival order " + std::to_string(mode));
  }
}

TEST(Dist, StreamedConcurrentDeliveryIsBitIdentical) {
  // Every shard delivered from its own racing thread: the engine's
  // internal synchronisation must serialize group completion without
  // letting the schedule leak into the result.
  const Platform platform = multi_cluster(160);
  PlanOptions options;
  options.shards = 9;
  const plat::Partition partition = plat::partition_platform(platform, 9);
  const auto batch_fn =
      [&platform, &options](const std::vector<std::vector<NodeId>>& leaves) {
        return serial_leaf_plans(platform, options, leaves);
      };
  const PlanResult batch =
      plan_sharded_with(platform, kParams, dgemm_service(310), options,
                        partition, 3, batch_fn);
  const auto stream_fn =
      [&platform, &options](const std::vector<std::vector<NodeId>>& leaves,
                            const ShardResultSink& ready) {
        std::vector<PlanResult> plans =
            serial_leaf_plans(platform, options, leaves);
        std::vector<std::thread> threads;
        threads.reserve(plans.size());
        for (std::size_t s = 0; s < plans.size(); ++s)
          threads.emplace_back(
              [&ready, &plans, s] { ready(s, std::move(plans[s])); });
        for (std::thread& thread : threads) thread.join();
      };
  for (int round = 0; round < 3; ++round)
    expect_identical(
        plan_sharded_streamed(platform, kParams, dgemm_service(310), options,
                              partition, 3, stream_fn),
        batch, "concurrent delivery round " + std::to_string(round));
}

TEST(Dist, StreamedMissingOrDuplicateDeliveryIsAnError) {
  const Platform platform = multi_cluster(120, 5);
  PlanOptions options;
  options.shards = 4;
  const plat::Partition partition = plat::partition_platform(platform, 4);
  // A leaf planner that never delivers: the stitch must refuse to
  // finalize rather than stitch a hole.
  EXPECT_THROW(
      plan_sharded_streamed(platform, kParams, dgemm_service(310), options,
                            partition, kDefaultStitchFanout,
                            [](const std::vector<std::vector<NodeId>>&,
                               const ShardResultSink&) {}),
      Error);
  // Delivering the same shard twice is a contract violation, not a
  // silent overwrite.
  EXPECT_THROW(
      plan_sharded_streamed(
          platform, kParams, dgemm_service(310), options, partition,
          kDefaultStitchFanout,
          [&platform, &options](const std::vector<std::vector<NodeId>>& leaves,
                                const ShardResultSink& ready) {
            std::vector<PlanResult> plans =
                serial_leaf_plans(platform, options, leaves);
            ready(0, plans[0]);
            ready(0, plans[0]);
          }),
      Error);
}

TEST(Dist, BatchModeCoordinatorMatchesStreamingAndCountsNoStreamed) {
  // --no-stream's A/B baseline: same plan bit for bit, but nothing may
  // reach the stitch before the batch barrier — dist.streamed stays 0.
  const Platform platform = multi_cluster(160);
  const PlanResult sharded =
      run_planner("sharded", platform, dgemm_service(310));
  reset_stats_for_test();
  {
    InProcessTransport transport;
    CoordinatorConfig config;
    config.workers = 2;
    config.streaming = false;
    Coordinator coordinator(transport, config);
    expect_identical(coordinator.plan(make_request(platform)), sharded,
                     "batch-mode coordinator");
    EXPECT_EQ(stats_snapshot().streamed, 0u);
  }
  {
    InProcessTransport transport;
    CoordinatorConfig config;
    config.workers = 2;
    Coordinator coordinator(transport, config);
    expect_identical(coordinator.plan(make_request(platform)), sharded,
                     "streaming coordinator");
    EXPECT_GT(stats_snapshot().streamed, 0u);
  }
}

// ----------------------------------------------------- fault injection --

TEST(Dist, CrashingFleetFallsBackInProcessBitIdentically) {
  const Platform platform = multi_cluster(160);
  reset_stats_for_test();
  PipeTransport transport(shell("read -r line; exit 1"));
  CoordinatorConfig config;
  config.workers = 2;
  Coordinator coordinator(transport, config);
  const PlanResult distributed = coordinator.plan(make_request(platform));
  expect_identical(distributed,
                   run_planner("sharded", platform, dgemm_service(310)),
                   "every worker crashed mid-request");
  const DistStats stats = stats_snapshot();
  EXPECT_EQ(stats.worker_failures, 2u);
  EXPECT_GT(stats.fallbacks, 0u);
  for (std::size_t i = 0; i < coordinator.pool().size(); ++i)
    EXPECT_EQ(coordinator.pool().phase(i), WorkerPhase::Failed);
}

TEST(Dist, GarbageResponsesFailTheWorkerNeverTheRequest) {
  const Platform platform = multi_cluster(120, 5);
  PipeTransport transport(shell("while read -r line; do echo not-json; done"));
  CoordinatorConfig config;
  config.workers = 2;
  Coordinator coordinator(transport, config);
  expect_identical(coordinator.plan(make_request(platform)),
                   run_planner("sharded", platform, dgemm_service(310)),
                   "garbage on the wire");
}

TEST(Dist, TruncatedJsonFailsTheWorkerNeverTheRequest) {
  const Platform platform = multi_cluster(120, 5);
  PipeTransport transport(
      shell(R"(read -r line; printf '%s\n' '{"id":0,"ok":tr'; exit 0)"));
  CoordinatorConfig config;
  config.workers = 2;
  Coordinator coordinator(transport, config);
  expect_identical(coordinator.plan(make_request(platform)),
                   run_planner("sharded", platform, dgemm_service(310)),
                   "truncated response line");
}

TEST(Dist, HangingWorkersTimeOutAndTheRequestStillSucceeds) {
  const Platform platform = multi_cluster(120, 5);
  reset_stats_for_test();
  PipeTransport transport(shell("sleep 30"));
  CoordinatorConfig config;
  config.workers = 2;
  config.shard_timeout_ms = 150.0;
  Coordinator coordinator(transport, config);
  expect_identical(coordinator.plan(make_request(platform)),
                   run_planner("sharded", platform, dgemm_service(310)),
                   "hung workers under a 150 ms shard timeout");
  EXPECT_EQ(stats_snapshot().worker_failures, 2u);
}

TEST(Dist, ExecFailureBehavesLikeWorkerLossNotAnError) {
  const Platform platform = multi_cluster(120, 5);
  PipeTransport transport({"/nonexistent/adept-no-such-binary"});
  CoordinatorConfig config;
  config.workers = 2;
  Coordinator coordinator(transport, config);
  expect_identical(coordinator.plan(make_request(platform)),
                   run_planner("sharded", platform, dgemm_service(310)),
                   "worker binary missing");
}

TEST(Dist, MixedFleetRedispatchesToTheSurvivingWorker) {
  const Platform platform = multi_cluster(160);
  reset_stats_for_test();
  PipeTransport healthy(serve_command());
  PipeTransport rigged(shell("read -r line; exit 1"));
  std::vector<std::unique_ptr<Worker>> fleet;
  fleet.push_back(healthy.spawn());
  fleet.push_back(rigged.spawn());
  Coordinator coordinator(std::move(fleet));
  const PlanResult distributed = coordinator.plan(make_request(platform));
  expect_identical(distributed,
                   run_planner("sharded", platform, dgemm_service(310)),
                   "one worker killed mid-run");
  const DistStats stats = stats_snapshot();
  EXPECT_EQ(stats.worker_failures, 1u);
  EXPECT_GT(stats.retried, 0u);
  // The rigged worker's shards were answered by the survivor, not the
  // in-process fallback.
  EXPECT_EQ(stats.fallbacks, 0u);
  EXPECT_EQ(coordinator.pool().phase(0), WorkerPhase::Idle);
  EXPECT_EQ(coordinator.pool().phase(1), WorkerPhase::Failed);
  EXPECT_EQ(coordinator.pool().healthy_count(), 1u);
}

// ------------------------------------------------ pool-level behaviour --

TEST(Dist, HealthCheckFailsUnresponsiveWorkers) {
  PipeTransport healthy(serve_command());
  PipeTransport rigged(shell("read -r line; exit 1"));
  std::vector<std::unique_ptr<Worker>> fleet;
  fleet.push_back(healthy.spawn());
  fleet.push_back(rigged.spawn());
  WorkerPoolConfig config;
  config.shard_timeout_ms = 5000.0;
  WorkerPool pool(std::move(fleet), config);
  EXPECT_FALSE(pool.health_check());
  EXPECT_EQ(pool.healthy_count(), 1u);
  EXPECT_EQ(pool.phase(0), WorkerPhase::Idle);
  EXPECT_EQ(pool.phase(1), WorkerPhase::Failed);
}

TEST(Dist, HealthyFleetPassesTheHealthCheck) {
  InProcessTransport transport;
  WorkerPool pool(transport, 2);
  EXPECT_TRUE(pool.health_check());
  EXPECT_EQ(pool.healthy_count(), 2u);
}

TEST(Dist, PhaseNamesCoverTheStateMachine) {
  EXPECT_STREQ(worker_phase_name(WorkerPhase::Idle), "idle");
  EXPECT_STREQ(worker_phase_name(WorkerPhase::Dispatched), "dispatched");
  EXPECT_STREQ(worker_phase_name(WorkerPhase::Responded), "responded");
  EXPECT_STREQ(worker_phase_name(WorkerPhase::Failed), "failed");
}

TEST(Dist, CleanRunLeavesWorkersIdleAndCountsNoFaults) {
  const Platform platform = multi_cluster(120, 9);
  reset_stats_for_test();
  InProcessTransport transport;
  CoordinatorConfig config;
  config.workers = 2;
  Coordinator coordinator(transport, config);
  const PlanResult result = coordinator.plan(make_request(platform));
  EXPECT_TRUE(result.hierarchy.validate().empty());
  for (std::size_t i = 0; i < coordinator.pool().size(); ++i)
    EXPECT_EQ(coordinator.pool().phase(i), WorkerPhase::Idle);
  const DistStats stats = stats_snapshot();
  EXPECT_EQ(stats.plans, 1u);
  EXPECT_EQ(stats.workers_spawned, 2u);
  EXPECT_GT(stats.dispatched, 0u);
  EXPECT_EQ(stats.dispatched, stats.responded);
  EXPECT_EQ(stats.worker_failures, 0u);
  EXPECT_EQ(stats.retried, 0u);
  EXPECT_EQ(stats.fallbacks, 0u);
}

// ------------------------------------------------ supervision / respawn --

TEST(Dist, CrashStormWithRespawnNeverFallsBack) {
  // Every worker answers exactly one shard and dies, every round — the
  // supervisor refills the fleet between rounds, so the whole request is
  // still answered by (a parade of) real workers, never the fallback.
  const Platform platform = multi_cluster(120, 5);
  reset_stats_for_test();
  PipeTransport transport(answer_one_then_die());
  SupervisorConfig config;
  config.workers = 2;
  config.pool.respawn_backoff_ms = 0.0;
  config.pool.max_retries = 32;
  FleetSupervisor fleet(transport, config);
  const PlanResult sharded =
      run_planner("sharded", platform, dgemm_service(310));
  for (int round = 0; round < 2; ++round) {
    Coordinator coordinator(fleet);
    expect_identical(coordinator.plan(make_request(platform)), sharded,
                     "crash storm, plan " + std::to_string(round));
  }
  const DistStats stats = stats_snapshot();
  EXPECT_GT(stats.workers_respawned, 0u);
  EXPECT_GT(stats.worker_failures, 0u);
  EXPECT_GT(stats.retried, 0u);
  EXPECT_EQ(stats.fallbacks, 0u);
}

TEST(Dist, StormFallsBackBitIdenticallyThenFleetRecovers) {
  const Platform platform = multi_cluster(120, 5);
  const std::string sentinel = sentinel_path("storm");
  touch(sentinel);
  reset_stats_for_test();
  PipeTransport transport(storm_gated_worker(sentinel));
  SupervisorConfig config;
  config.workers = 2;
  config.pool.respawn_backoff_ms = 0.0;
  config.pool.max_retries = 1;
  FleetSupervisor fleet(transport, config);
  const PlanResult sharded =
      run_planner("sharded", platform, dgemm_service(310));
  {
    // Storm: every worker (and every respawn) dies on first contact, so
    // the request is answered by the in-process fallback — bit-identical.
    Coordinator coordinator(fleet);
    expect_identical(coordinator.plan(make_request(platform)), sharded,
                     "full storm, fallback");
  }
  const DistStats storm = stats_snapshot();
  EXPECT_GT(storm.workers_respawned, 0u);
  EXPECT_GT(storm.fallbacks, 0u);
  // Storm over: the next heartbeat respawns genuine workers and the next
  // plan runs on them without a single new fault.
  std::filesystem::remove(sentinel);
  EXPECT_TRUE(fleet.heartbeat());
  EXPECT_EQ(fleet.healthy_count(), 2u);
  {
    Coordinator coordinator(fleet);
    expect_identical(coordinator.plan(make_request(platform)), sharded,
                     "recovered fleet");
  }
  const DistStats recovered = stats_snapshot();
  EXPECT_EQ(recovered.worker_failures, storm.worker_failures);
  EXPECT_EQ(recovered.fallbacks, storm.fallbacks);
  EXPECT_GT(recovered.responded, storm.responded);
}

TEST(Dist, ConcurrentPlansUnderHeartbeatStayDeterministic) {
  // Two planner threads race each other and the 5 ms monitor heartbeat
  // for the fleet lease while every worker keeps dying; the lease
  // serializes them, so both still match the local sharded planner.
  const Platform platform = multi_cluster(120, 5);
  PipeTransport transport(answer_one_then_die());
  SupervisorConfig config;
  config.workers = 2;
  config.pool.respawn_backoff_ms = 0.0;
  config.pool.max_retries = 32;
  config.heartbeat_interval_ms = 5.0;
  FleetSupervisor fleet(transport, config);
  const PlanResult sharded =
      run_planner("sharded", platform, dgemm_service(310));
  std::vector<PlanResult> results(2);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < results.size(); ++t)
    threads.emplace_back([&fleet, &platform, &results, t] {
      Coordinator coordinator(fleet);
      results[t] = coordinator.plan(make_request(platform));
    });
  for (std::thread& thread : threads) thread.join();
  for (std::size_t t = 0; t < results.size(); ++t)
    expect_identical(results[t], sharded,
                     "concurrent plan " + std::to_string(t));
}

TEST(Dist, HealthCheckUsesTheShortHealthTimeout) {
  // A hung worker must fail a heartbeat in health_timeout_ms, not in the
  // two-minute shard timeout the pool grants real planning work.
  PipeTransport transport(shell("sleep 30"));
  std::vector<std::unique_ptr<Worker>> fleet;
  fleet.push_back(transport.spawn());
  WorkerPoolConfig config;
  config.health_timeout_ms = 100.0;
  WorkerPool pool(std::move(fleet), config);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(pool.health_check());
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed_ms, 5000.0);
  EXPECT_EQ(pool.healthy_count(), 0u);
}

// ----------------------------------------------- deadline-aware retries --

TEST(Dist, HungWorkerCannotOutliveTheCallersDeadline) {
  // Default shard timeout is two minutes; the caller's deadline is
  // 400 ms. The dispatch round must clip its receive timeout to the
  // remaining budget and surface the same deadline error the local
  // sharded planner would — not sit on the pipe for 120 s.
  const Platform platform = multi_cluster(120, 5);
  PipeTransport transport(shell("sleep 30"));
  CoordinatorConfig config;
  config.workers = 2;
  Coordinator coordinator(transport, config);
  PlanOptions options;
  options.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(coordinator.plan(make_request(platform, std::move(options))),
               Error);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed_ms, 20000.0);
}

TEST(Dist, DribblingWriterCannotRestartTheReceiveTimeout) {
  // A worker that emits one byte every 50 ms never completes a line; the
  // receive deadline is absolute, so partial reads must not extend it.
  PipeTransport transport(
      shell("while true; do printf x; sleep 0.05; done"));
  std::unique_ptr<Worker> worker = transport.spawn();
  std::string line;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(worker->receive(line, 300.0));
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed_ms, 250.0);
  EXPECT_LT(elapsed_ms, 10000.0);
}

TEST(Dist, SharedFleetStaysWarmAcrossRegistryPlans) {
  const Platform platform = multi_cluster(120, 9);
  // First plan warms the process-wide fleet (spawning it if this test
  // runs first); afterwards plans must reuse the same workers.
  run_planner("distributed", platform, dgemm_service(310));
  const DistStats warm = stats_snapshot();
  run_planner("distributed", platform, dgemm_service(310));
  const DistStats after = stats_snapshot();
  EXPECT_EQ(after.workers_spawned, warm.workers_spawned);
  EXPECT_EQ(after.plans, warm.plans + 1u);
  EXPECT_GT(after.responded, warm.responded);
}

// ----------------------------------------------------------- shard cache --

TEST(Dist, ShardCacheHitsSkipDispatchBitIdentically) {
  // A warm shard cache answers every leaf before the wire: the second
  // plan dispatches nothing, and both results match the local sharded
  // planner byte for byte.
  reset_stats_for_test();
  const Platform platform = multi_cluster(160);
  const PlanResult sharded =
      run_planner("sharded", platform, dgemm_service(310));

  InProcessTransport transport;
  CoordinatorConfig config;
  config.workers = 2;
  Coordinator coordinator(transport, config);
  ShardPlanCache cache(64);
  PlanOptions options;
  options.shard_cache = &cache;
  const PlanResult cold = coordinator.plan(make_request(platform, options));
  const std::uint64_t dispatched = stats_snapshot().dispatched;
  EXPECT_GT(dispatched, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);

  const PlanResult warm = coordinator.plan(make_request(platform, options));
  EXPECT_EQ(stats_snapshot().dispatched, dispatched);
  EXPECT_EQ(cache.stats().hits, cache.stats().misses);

  expect_identical(cold, sharded, "cold vs sharded");
  expect_identical(warm, sharded, "warm vs sharded");
}

TEST(Dist, LocalShardedPlanWarmsTheCoordinatorsCache) {
  // The local leaf path and the coordinator (default leaf planner
  // "heuristic") key shard problems identically: a plan_sharded() run
  // fills the cache, and a distributed plan then dispatches zero shards.
  reset_stats_for_test();
  const Platform platform = multi_cluster(160);
  ShardPlanCache cache(64);
  PlanOptions options;
  options.shard_cache = &cache;
  const plat::Partition partition = plat::partition_platform(platform, 0);
  const PlanResult local = plan_sharded(platform, kParams, dgemm_service(310),
                                        options, partition);

  InProcessTransport transport;
  Coordinator coordinator(transport);
  const PlanResult distributed =
      coordinator.plan(make_request(platform, options));
  EXPECT_EQ(stats_snapshot().dispatched, 0u);
  expect_identical(distributed, local, "warmed distributed vs local");
}

}  // namespace
}  // namespace adept
