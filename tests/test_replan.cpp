/// \file test_replan.cpp
/// \brief ReplanOrchestrator: pruning, incremental repair, drift and
/// structural fallbacks, budget behaviour, and whole-run determinism
/// across service thread counts.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "planner/replan.hpp"
#include "platform/generator.hpp"
#include "sim/scenario.hpp"

namespace adept {
namespace {

using sim::MutationEvent;
using sim::MutationKind;
using sim::Scenario;
using sim::ScenarioEngine;

const MiddlewareParams kParams = MiddlewareParams::diet_grid5000();
const ServiceSpec kService = dgemm_service(310);

MutationEvent crash_event(NodeId node) {
  MutationEvent event;
  event.kind = MutationKind::Crash;
  event.node = node;
  return event;
}

/// Short scenario with enough churn to force prunes and regrowth.
Scenario churny(std::uint64_t seed = 8) {
  Scenario sc;
  sc.name = "test-churny";
  sc.seed = seed;
  sc.duration = 6.0;
  sc.platform = {"uniform", 24, 3, {}};
  sc.churn.crash_rate = 3.0;
  sc.churn.rejoin_after_lo = 0.5;
  sc.churn.rejoin_after_hi = 2.0;
  sc.churn.degrade_rate = 2.0;
  sc.churn.degrade_scale_lo = 0.3;
  sc.churn.degrade_scale_hi = 0.7;
  sc.churn.degrade_for_lo = 0.5;
  sc.churn.degrade_for_hi = 2.0;
  sc.demand = {120.0, 80.0, 3.0, 0.5};
  return sc;
}

/// Runs a whole scenario through an orchestrator; asserts the plan is
/// structurally valid and avoids down nodes after every single event.
ReplanStats run_checked(const Scenario& scenario, std::size_t threads,
                        ReplanConfig config, Hierarchy* final_hierarchy,
                        model::ThroughputReport* final_report) {
  ScenarioEngine engine(scenario);
  PlanningService service(threads);
  ReplanOrchestrator orchestrator(service, kParams, kService, config);
  orchestrator.bootstrap(engine.platform(), engine.down(), engine.demand());
  while (!engine.done()) {
    const MutationEvent& event = engine.step();
    orchestrator.on_event(event, engine.platform(), engine.down(),
                          engine.demand());
    const Hierarchy& plan = orchestrator.hierarchy();
    if (!plan.empty()) {
      EXPECT_TRUE(plan.validate(&engine.platform()).empty());
      for (std::size_t i = 0; i < plan.size(); ++i)
        EXPECT_FALSE(engine.down().contains(plan.node_of(i)));
    }
  }
  if (final_hierarchy != nullptr) *final_hierarchy = orchestrator.hierarchy();
  if (final_report != nullptr) *final_report = orchestrator.report();
  return orchestrator.stats();
}

TEST(ReplanOrchestrator, BootstrapPlansTheFullPlatform) {
  const Platform platform = gen::catalog_platform("uniform", 30, 3);
  PlanningService service(2);
  ReplanOrchestrator orchestrator(service, kParams, kService);
  const RepairOutcome outcome =
      orchestrator.bootstrap(platform, {}, sim::kNoDemandCap);
  EXPECT_EQ(outcome.action, RepairAction::Full);
  EXPECT_FALSE(orchestrator.hierarchy().empty());
  EXPECT_TRUE(orchestrator.hierarchy().validate(&platform).empty());
  EXPECT_GT(orchestrator.report().overall, 0.0);
}

TEST(ReplanOrchestrator, CrashOfUsedNodePrunesAndRepairs) {
  const Platform platform = gen::catalog_platform("uniform", 30, 3);
  PlanningService service(2);
  ReplanOrchestrator orchestrator(service, kParams, kService);
  orchestrator.bootstrap(platform, {}, sim::kNoDemandCap);

  // Crash a deployed server (any non-root element's node).
  const Hierarchy& plan = orchestrator.hierarchy();
  ASSERT_GT(plan.size(), 1u);
  const NodeId victim = plan.node_of(plan.servers().front());
  NodeSet down;
  down.insert(victim);

  const RepairOutcome outcome = orchestrator.on_event(
      crash_event(victim), platform, down, sim::kNoDemandCap);
  EXPECT_TRUE(outcome.pruned);
  EXPECT_EQ(outcome.action, RepairAction::Incremental);
  for (std::size_t i = 0; i < orchestrator.hierarchy().size(); ++i)
    EXPECT_NE(orchestrator.hierarchy().node_of(i), victim);
  EXPECT_EQ(orchestrator.stats().prunes, 1u);
}

TEST(ReplanOrchestrator, RootCrashFallsBackToFullReplan) {
  const Platform platform = gen::catalog_platform("uniform", 30, 3);
  PlanningService service(2);
  ReplanOrchestrator orchestrator(service, kParams, kService);
  orchestrator.bootstrap(platform, {}, sim::kNoDemandCap);

  const NodeId root_node =
      orchestrator.hierarchy().node_of(orchestrator.hierarchy().root());
  NodeSet down;
  down.insert(root_node);
  const RepairOutcome outcome = orchestrator.on_event(
      crash_event(root_node), platform, down, sim::kNoDemandCap);
  EXPECT_EQ(outcome.action, RepairAction::Full);
  EXPECT_EQ(orchestrator.stats().structural_fallbacks, 1u);
  EXPECT_FALSE(orchestrator.hierarchy().empty());
  for (std::size_t i = 0; i < orchestrator.hierarchy().size(); ++i)
    EXPECT_NE(orchestrator.hierarchy().node_of(i), root_node);
}

TEST(ReplanOrchestrator, StartingWithoutBootstrapStillPlans) {
  const Platform platform = gen::catalog_platform("uniform", 20, 3);
  PlanningService service(2);
  ReplanOrchestrator orchestrator(service, kParams, kService);
  const RepairOutcome outcome = orchestrator.on_event(
      crash_event(0), platform, NodeSet{0}, sim::kNoDemandCap);
  EXPECT_EQ(outcome.action, RepairAction::Full);
  EXPECT_FALSE(orchestrator.hierarchy().empty());
}

TEST(ReplanOrchestrator, RootDegradationTriggersDriftFallback) {
  // Degrading only the root agent's node collapses the scheduling term
  // while the platform's alive power (the drift estimate's basis) barely
  // moves — and a root bottleneck has no incremental local fix, so the
  // orchestrator must notice the drift and restructure via a full replan.
  Platform platform = gen::catalog_platform("uniform", 24, 3);
  PlanningService service(2);
  ReplanOrchestrator orchestrator(service, kParams, kService);
  orchestrator.bootstrap(platform, {}, sim::kNoDemandCap);
  const RequestRate healthy = orchestrator.report().overall;

  const NodeId root_node =
      orchestrator.hierarchy().node_of(orchestrator.hierarchy().root());
  platform.set_power(root_node, 1.0);
  MutationEvent event;
  event.kind = MutationKind::SetPower;
  event.node = root_node;
  event.value = 1.0;
  const RepairOutcome outcome =
      orchestrator.on_event(event, platform, {}, sim::kNoDemandCap);

  EXPECT_EQ(orchestrator.stats().drift_fallbacks, 1u);
  EXPECT_EQ(outcome.action, RepairAction::Full);
  EXPECT_EQ(orchestrator.stats().full, 2u);  // Bootstrap + the fallback.
  // The replanned hierarchy roots on a healthy node and recovers most of
  // the lost throughput.
  EXPECT_NE(orchestrator.hierarchy().node_of(orchestrator.hierarchy().root()),
            root_node);
  EXPECT_GT(orchestrator.report().overall, 0.5 * healthy);
}

TEST(ReplanOrchestrator, SatisfiedDemandTickIsANoOp) {
  const Platform platform = gen::catalog_platform("uniform", 20, 3);
  PlanningService service(2);
  ReplanOrchestrator orchestrator(service, kParams, kService);
  orchestrator.bootstrap(platform, {}, sim::kNoDemandCap);
  const RequestRate met = orchestrator.report().overall / 2.0;
  const Hierarchy before = orchestrator.hierarchy();

  MutationEvent event;
  event.kind = MutationKind::Demand;
  event.value = met;
  const RepairOutcome outcome =
      orchestrator.on_event(event, platform, {}, met);
  EXPECT_EQ(outcome.action, RepairAction::None);
  EXPECT_EQ(orchestrator.stats().incremental, 0u);
  EXPECT_TRUE(orchestrator.hierarchy() == before);

  // A demand the plan does NOT meet takes the repair path.
  const RequestRate unmet = orchestrator.report().overall * 2.0;
  event.value = unmet;
  EXPECT_EQ(orchestrator.on_event(event, platform, {}, unmet).action,
            RepairAction::Incremental);
}

TEST(ReplanOrchestrator, WholeRunKeepsPlansValid) {
  ReplanConfig config;  // Unbudgeted.
  const ReplanStats stats = run_checked(churny(), 2, config, nullptr, nullptr);
  EXPECT_GT(stats.events, 0u);
  EXPECT_GT(stats.incremental, 0u);
  EXPECT_GT(stats.prunes, 0u);
  EXPECT_EQ(stats.full_skipped, 0u);  // No budget, nothing can be skipped.
}

TEST(ReplanOrchestrator, DeterministicAcrossServiceThreadCounts) {
  // budget_ms == 0 removes every wall-clock influence: the planners are
  // bit-identical for any pool size, so the entire run must be too.
  ReplanConfig config;
  Hierarchy h1, h4;
  model::ThroughputReport r1, r4;
  const ReplanStats s1 = run_checked(churny(), 1, config, &h1, &r1);
  const ReplanStats s4 = run_checked(churny(), 4, config, &h4, &r4);
  EXPECT_TRUE(h1 == h4);
  EXPECT_EQ(r1, r4);
  EXPECT_EQ(s1.events, s4.events);
  EXPECT_EQ(s1.incremental, s4.incremental);
  EXPECT_EQ(s1.full, s4.full);
  EXPECT_EQ(s1.prunes, s4.prunes);
}

TEST(ReplanOrchestrator, TinyBudgetNeverCorruptsThePlan) {
  ReplanConfig config;
  config.budget_ms = 0.05;  // Guaranteed to expire mid-repair regularly.
  const ReplanStats stats = run_checked(churny(), 2, config, nullptr, nullptr);
  EXPECT_EQ(stats.events, ScenarioEngine(churny()).trace().size());
}

// ------------------------------------------------------------ shard-local --

/// Multi-cluster churn scenario for the shard-local repair discipline.
Scenario clustered_churny(std::uint64_t seed = 12) {
  Scenario sc = churny(seed);
  sc.name = "test-clustered-churny";
  sc.platform = {"g5k-multi-cluster", 48, 5, {}};
  return sc;
}

TEST(ReplanOrchestrator, ShardLocalRepairOnlyRecruitsFromTheTouchedShard) {
  Rng rng(5);
  const Platform platform = gen::grid5000_multi_cluster(48, rng);
  PlanningService service(1);
  ReplanConfig config;
  config.shards = 0;  // automatic: one shard per cluster label
  ReplanOrchestrator orchestrator(service, kParams, kService, config);
  orchestrator.bootstrap(platform, {}, kUnlimitedDemand);

  const plat::Partition partition = plat::partition_platform(platform, 0);
  const auto shard_of = partition.shard_of(platform.size());
  // Crash a deployed node; the repair may only recruit from its shard.
  const NodeId victim = orchestrator.hierarchy().node_of(
      orchestrator.hierarchy().size() / 2);
  NodeSet before(orchestrator.hierarchy().used_nodes());
  const NodeSet down{victim};
  const RepairOutcome outcome = orchestrator.on_event(
      crash_event(victim), platform, down, kUnlimitedDemand);
  ASSERT_EQ(outcome.action, RepairAction::Incremental) << outcome.detail;
  for (const NodeId used : orchestrator.hierarchy().used_nodes()) {
    EXPECT_NE(used, victim);
    if (!before.contains(used))
      EXPECT_EQ(shard_of[used], shard_of[victim])
          << "recruited node " << used << " from a foreign shard";
  }
}

TEST(ReplanOrchestrator, ShardLocalRunsStayDeterministicAcrossThreadCounts) {
  ReplanConfig config;
  config.shards = 0;
  Hierarchy h1, h4;
  model::ThroughputReport r1, r4;
  const ReplanStats s1 = run_checked(clustered_churny(), 1, config, &h1, &r1);
  const ReplanStats s4 = run_checked(clustered_churny(), 4, config, &h4, &r4);
  EXPECT_TRUE(h1 == h4);
  EXPECT_EQ(r1, r4);
  EXPECT_EQ(s1.incremental, s4.incremental);
  EXPECT_EQ(s1.full, s4.full);
}

TEST(ReplanOrchestrator, ShardLocalWholeRunKeepsPlansValid) {
  ReplanConfig config;
  config.shards = 0;
  config.planner = "sharded";  // shard-aware fallback planner too
  const ReplanStats stats =
      run_checked(clustered_churny(), 2, config, nullptr, nullptr);
  EXPECT_GT(stats.events, 0u);
  EXPECT_GT(stats.incremental, 0u);
  EXPECT_EQ(stats.full_failed, 0u);
}

// ------------------------------------------------------------ shard cache --

TEST(ReplanOrchestrator, RootCrashReplansOnlyTheTouchedShardThroughTheCache) {
  // The tentpole acceptance scenario: a sharded orchestrator with a
  // shard cache bootstraps (S cold misses), then loses the plan's root.
  // Pruning leaves nothing, so the repair is a full sharded replan on
  // the survivor platform — and every untouched shard's leaf plan is a
  // content hit (hit rate exactly (S-1)/S) even though the survivor
  // subset shifted every global node id. Only the crashed node's shard
  // replans.
  Rng rng(5);
  const Platform platform = gen::grid5000_multi_cluster(60, rng);
  PlanningService service(2);
  ReplanConfig config;
  config.planner = "sharded";
  config.shards = 0;
  config.cache = CacheConfig{0, 64, true};
  ReplanOrchestrator orchestrator(service, kParams, kService, config);
  orchestrator.bootstrap(platform, {}, kUnlimitedDemand);

  const plat::Partition partition = plat::partition_platform(platform, 0);
  const std::size_t shards = partition.shards.size();
  ASSERT_GE(shards, 2u);
  const PlanningStats warm = service.stats();
  EXPECT_EQ(warm.shard_cache_misses, shards);
  EXPECT_EQ(warm.shard_cache_hits, 0u);

  const NodeId root_node =
      orchestrator.hierarchy().node_of(orchestrator.hierarchy().root());
  NodeSet down;
  down.insert(root_node);
  const RepairOutcome outcome = orchestrator.on_event(
      crash_event(root_node), platform, down, kUnlimitedDemand);
  EXPECT_EQ(outcome.action, RepairAction::Full);

  const PlanningStats stats = service.stats();
  EXPECT_EQ(stats.shard_cache_invalidations, 1u);  // the root's shard entry
  EXPECT_EQ(stats.shard_cache_hits, shards - 1);
  EXPECT_EQ(stats.shard_cache_misses, shards + 1);

  // Bit-identity: a cache-less orchestrator driven through the identical
  // sequence lands on the same hierarchy and report.
  PlanningService plain_service(2);
  ReplanConfig plain = config;
  plain.cache.reset();
  ReplanOrchestrator reference(plain_service, kParams, kService, plain);
  reference.bootstrap(platform, {}, kUnlimitedDemand);
  reference.on_event(crash_event(root_node), platform, down,
                     kUnlimitedDemand);
  EXPECT_TRUE(orchestrator.hierarchy() == reference.hierarchy());
  EXPECT_EQ(orchestrator.report(), reference.report());
}

TEST(ReplanOrchestrator, DriftEscalationFlushesTheShardCache) {
  // Quality drift means accumulated churn, not one shard, invalidated
  // the plan — the orchestrator flushes the whole shard cache before the
  // global fallback, and the fallback re-fills it from current content.
  Rng rng(7);
  Platform platform = gen::grid5000_multi_cluster(48, rng);
  PlanningService service(2);
  ReplanConfig config;
  config.planner = "sharded";
  config.shards = 0;
  config.cache = CacheConfig{0, 64, true};
  ReplanOrchestrator orchestrator(service, kParams, kService, config);
  orchestrator.bootstrap(platform, {}, kUnlimitedDemand);
  ASSERT_GT(service.shard_cache().size(), 1u);

  const NodeId root_node =
      orchestrator.hierarchy().node_of(orchestrator.hierarchy().root());
  platform.set_power(root_node, 1.0);
  MutationEvent event;
  event.kind = MutationKind::SetPower;
  event.node = root_node;
  event.value = 1.0;
  orchestrator.on_event(event, platform, {}, kUnlimitedDemand);

  EXPECT_GE(orchestrator.stats().drift_fallbacks, 1u);
  EXPECT_EQ(service.stats().shard_cache_flushes, 1u);
}

TEST(ReplanOrchestrator, CachedChurnRunsAreBitIdenticalToUncachedOnes) {
  // Whole-run determinism rule: the shard cache must never change a
  // single repair decision — a full churny scenario with the cache on
  // (and a different thread count) ends bit-identical to one without.
  ReplanConfig plain;
  plain.shards = 0;
  plain.planner = "sharded";
  ReplanConfig cached = plain;
  cached.cache = CacheConfig{0, 256, true};
  Hierarchy h_plain, h_cached;
  model::ThroughputReport r_plain, r_cached;
  const ReplanStats s_plain =
      run_checked(clustered_churny(), 2, plain, &h_plain, &r_plain);
  const ReplanStats s_cached =
      run_checked(clustered_churny(), 4, cached, &h_cached, &r_cached);
  EXPECT_TRUE(h_plain == h_cached);
  EXPECT_EQ(r_plain, r_cached);
  EXPECT_EQ(s_plain.incremental, s_cached.incremental);
  EXPECT_EQ(s_plain.full, s_cached.full);
  EXPECT_EQ(s_plain.drift_fallbacks, s_cached.drift_fallbacks);
}

TEST(ReplanOrchestrator, RejectsBadConfig) {
  PlanningService service(1);
  ReplanConfig negative;
  negative.budget_ms = -1.0;
  EXPECT_THROW(ReplanOrchestrator(service, kParams, kService, negative), Error);
  ReplanConfig zero_drift;
  zero_drift.drift_threshold = 0.0;
  EXPECT_THROW(ReplanOrchestrator(service, kParams, kService, zero_drift),
               Error);
}

}  // namespace
}  // namespace adept
