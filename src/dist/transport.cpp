/// \file transport.cpp
/// \brief In-process, pipe and socket worker transports.

#include "dist/transport.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/json.hpp"
#include "dist/stats.hpp"
// The workers speak the serve wire format; like planning_service.cpp's
// cache-key serializer, this is a deliberate .cpp-local upward reference
// into the io layer of the same static library.
#include "io/wire.hpp"
#include "model/evaluate.hpp"

namespace adept::dist {

namespace {

// ---------------------------------------------------------- shared framing --

/// A worker that dies mid-write must surface as an EPIPE/ECONNRESET
/// errno on the coordinator's write(), not as a process-killing SIGPIPE.
/// Both the pipe and socket transports arm this once per process.
void ignore_sigpipe_once() {
  static std::once_flag flag;
  std::call_once(flag, [] { ::signal(SIGPIPE, SIG_IGN); });
}

/// Ships `line` + '\n' to `fd`, retrying EINTR and partial writes. Any
/// other error clears `alive` (the peer died under us) and returns
/// false.
bool send_framed_line(int fd, const std::string& line, bool& alive) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t written = 0;
  while (written < framed.size()) {
    const ssize_t n =
        ::write(fd, framed.data() + written, framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      alive = false;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// The shared receive loop of the pipe and socket workers. One absolute
/// deadline for the whole receive: every retry — poll() slices, EINTR on
/// poll() or read(), partial-line reads from a dribbling writer —
/// re-checks this instant; nothing restarts the budget, so a receive(t)
/// returns within ~t no matter how the bytes arrive. EOF and read errors
/// clear `alive`; a timeout leaves it set (the pool decides the peer is
/// hung and kills it).
bool receive_framed_line(int fd, std::string& buffer, std::string& line,
                         double timeout_ms, bool& alive) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          static_cast<long long>(std::max(0.0, timeout_ms) * 1000.0));
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      return true;
    }
    if (!alive || fd < 0) return false;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return false;  // timeout: hung worker
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(
        &pfd, 1,
        static_cast<int>(std::min<long long>(remaining.count(), 1000)));
    if (ready < 0) {
      if (errno == EINTR) continue;
      alive = false;
      return false;
    }
    if (ready == 0) continue;  // re-check the deadline
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      // A signal landing between poll() and read() is not a dead
      // worker; retry against the same absolute deadline.
      if (errno == EINTR) continue;
      alive = false;
      return false;
    }
    if (n == 0) {  // EOF: crash, exec failure, or a closed connection
      alive = false;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

// ------------------------------------------------------------- in-process --

/// Answers serve-protocol lines by planning on the receiving thread.
class InProcessWorker final : public Worker {
 public:
  explicit InProcessWorker(const PlannerRegistry& registry)
      : registry_(registry) {}

  bool send(const std::string& line) final {
    if (!alive_) return false;
    inbox_.push_back(line);
    return true;
  }

  bool receive(std::string& line, double /*timeout_ms*/) final {
    if (!alive_ || inbox_.empty()) return false;
    const std::string request = std::move(inbox_.front());
    inbox_.pop_front();
    line = answer(request);
    return true;
  }

  bool alive() const final { return alive_; }
  void kill() final { alive_ = false; }

 private:
  std::string answer(const std::string& line) const {
    json::Value response = json::Value::object();
    response.set("id", json::Value(nullptr));
    try {
      const json::Value doc = json::parse(line);
      if (const json::Value* id = doc.find("id")) response.set("id", *id);
      if (const json::Value* cmd = doc.find("cmd")) {
        ADEPT_CHECK(cmd->as_string() == "stats",
                    "unknown command '" + cmd->as_string() + "'");
        response.set("ok", true);
        response.set("stats", json::Value::object());
        return response.dump();
      }
      PlannerRun run;
      run.planner = "heuristic";
      if (const json::Value* planner = doc.find("planner"))
        run.planner = planner->as_string();
      PlanRequest request = wire::request_from_json(doc);
      if (const json::Value* budget = doc.find("budget_ms")) {
        const double ms = budget->as_number();
        ADEPT_CHECK(ms > 0.0 && ms <= 8.64e10,
                    "budget_ms must be in (0, 8.64e10]");
        request.options.deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(static_cast<long long>(ms * 1000.0));
      }
      const std::uint64_t evals_before = model::evaluations_on_this_thread();
      const auto start = std::chrono::steady_clock::now();
      try {
        run.result = registry_.at(run.planner).plan(request);
        run.ok = true;
      } catch (const std::exception& e) {
        run.error = e.what();
        if (request.options.should_stop()) run.skipped = true;
      }
      run.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      run.evaluations = model::evaluations_on_this_thread() - evals_before;
      response.set("ok", run.ok);
      if (!run.ok) response.set("error", run.error);
      response.set("run", wire::to_json(run));
    } catch (const std::exception& e) {
      response.set("ok", false);
      response.set("error", e.what());
    }
    return response.dump();
  }

  const PlannerRegistry& registry_;
  std::deque<std::string> inbox_;
  bool alive_ = true;
};

// ------------------------------------------------------------------- pipes --

/// One fork/exec'd subprocess with piped stdin/stdout.
class PipeWorker final : public Worker {
 public:
  explicit PipeWorker(const std::vector<std::string>& argv) {
    int to_child[2];    // parent writes → child stdin
    int from_child[2];  // child stdout → parent reads
    ADEPT_CHECK(::pipe(to_child) == 0 && ::pipe(from_child) == 0,
                "cannot create worker pipes: " +
                    std::string(std::strerror(errno)));
    pid_ = ::fork();
    ADEPT_CHECK(pid_ >= 0,
                "cannot fork worker: " + std::string(std::strerror(errno)));
    if (pid_ == 0) {
      // Child: wire the pipes to stdio and exec. Only async-signal-safe
      // calls between fork and exec (the parent may be multithreaded).
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      std::vector<char*> args;
      args.reserve(argv.size() + 1);
      for (const std::string& arg : argv)
        args.push_back(const_cast<char*>(arg.c_str()));
      args.push_back(nullptr);
      ::execvp(args[0], args.data());
      ::_exit(127);  // exec failed; the parent sees EOF on first receive
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    in_fd_ = to_child[1];
    out_fd_ = from_child[0];
    // Keep the fds out of any worker this process forks later.
    ::fcntl(in_fd_, F_SETFD, FD_CLOEXEC);
    ::fcntl(out_fd_, F_SETFD, FD_CLOEXEC);
  }

  ~PipeWorker() final { shutdown(); }

  bool send(const std::string& line) final {
    if (!alive_ || in_fd_ < 0) return false;
    return send_framed_line(in_fd_, line, alive_);
  }

  bool receive(std::string& line, double timeout_ms) final {
    return receive_framed_line(out_fd_, buffer_, line, timeout_ms, alive_);
  }

  bool alive() const final { return alive_; }

  void kill() final {
    if (pid_ > 0) ::kill(pid_, SIGKILL);
    alive_ = false;
  }

 private:
  /// Supervised shutdown: close stdin (serve quits on EOF), give the
  /// worker a bounded grace period, then SIGKILL; always reaps.
  void shutdown() {
    if (in_fd_ >= 0) {
      ::close(in_fd_);
      in_fd_ = -1;
    }
    if (pid_ > 0) {
      bool reaped = false;
      // Only a healthy worker earns the grace period — a failed one is
      // wedged or already dead, so go straight to SIGKILL.
      const int grace_rounds = alive_ ? 40 : 0;
      for (int round = 0; round < grace_rounds && !reaped; ++round) {
        int status = 0;
        if (::waitpid(pid_, &status, WNOHANG) == pid_) reaped = true;
        if (!reaped)
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (!reaped) {
        ::kill(pid_, SIGKILL);
        int status = 0;
        ::waitpid(pid_, &status, 0);
      }
      pid_ = -1;
    }
    if (out_fd_ >= 0) {
      ::close(out_fd_);
      out_fd_ = -1;
    }
    alive_ = false;
  }

  pid_t pid_ = -1;
  int in_fd_ = -1;
  int out_fd_ = -1;
  std::string buffer_;
  bool alive_ = true;
};

// ----------------------------------------------------------------- sockets --

/// Splits "host:port" on the *last* ':' (leaves IPv6-style hosts with
/// embedded colons intact). Throws on a missing or empty part.
void split_endpoint(const std::string& endpoint, std::string& host,
                    std::string& port) {
  const std::size_t colon = endpoint.rfind(':');
  ADEPT_CHECK(colon != std::string::npos && colon > 0 &&
                  colon + 1 < endpoint.size(),
              "socket endpoint must be host:port, got '" + endpoint + "'");
  host = endpoint.substr(0, colon);
  port = endpoint.substr(colon + 1);
}

/// Connects to `endpoint` under one absolute deadline shared across all
/// resolved addresses: non-blocking connect, then poll(POLLOUT) in
/// EINTR-retried slices, then SO_ERROR — the connect-side twin of the
/// receive discipline above. Returns a blocking, TCP_NODELAY, CLOEXEC
/// fd; throws adept::Error on failure (counted in
/// dist.socket.connect_failures).
int connect_with_deadline(const std::string& endpoint, double timeout_ms) {
  std::string host;
  std::string port;
  split_endpoint(endpoint, host, port);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          static_cast<long long>(std::max(0.0, timeout_ms) * 1000.0));
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof hints);
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* addrs = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &addrs);
  if (rc != 0) {
    ++detail::counters().socket_connect_failures;
    throw Error("cannot resolve serve endpoint '" + endpoint +
                "': " + ::gai_strerror(rc));
  }
  std::string reason = "no addresses";
  int fd = -1;
  for (struct addrinfo* a = addrs; a != nullptr && fd < 0; a = a->ai_next) {
    const int sock = ::socket(a->ai_family, a->ai_socktype | SOCK_CLOEXEC,
                              a->ai_protocol);
    if (sock < 0) {
      reason = std::strerror(errno);
      continue;
    }
    const int flags = ::fcntl(sock, F_GETFL, 0);
    ::fcntl(sock, F_SETFL, flags | O_NONBLOCK);
    int err = 0;
    if (::connect(sock, a->ai_addr, a->ai_addrlen) == 0) {
      // Loopback connects often complete synchronously.
    } else if (errno != EINPROGRESS) {
      err = errno;
    } else {
      // In progress: wait for writability under the absolute deadline.
      for (;;) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
        if (remaining.count() <= 0) {
          err = ETIMEDOUT;
          break;
        }
        struct pollfd pfd;
        pfd.fd = sock;
        pfd.events = POLLOUT;
        pfd.revents = 0;
        const int ready = ::poll(
            &pfd, 1,
            static_cast<int>(std::min<long long>(remaining.count(), 1000)));
        if (ready < 0) {
          if (errno == EINTR) continue;
          err = errno;
          break;
        }
        if (ready == 0) continue;  // re-check the deadline
        socklen_t len = sizeof err;
        if (::getsockopt(sock, SOL_SOCKET, SO_ERROR, &err, &len) < 0)
          err = errno;
        break;
      }
    }
    if (err != 0) {
      reason = std::strerror(err);
      ::close(sock);
      continue;
    }
    ::fcntl(sock, F_SETFL, flags);  // back to blocking for send()
    const int one = 1;
    ::setsockopt(sock, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    fd = sock;
  }
  ::freeaddrinfo(addrs);
  if (fd < 0) {
    ++detail::counters().socket_connect_failures;
    throw Error("cannot connect to serve endpoint '" + endpoint +
                "': " + reason);
  }
  ++detail::counters().socket_connects;
  return fd;
}

/// One TCP connection to an `adept serve --listen` session.
class SocketWorker final : public Worker {
 public:
  SocketWorker(const std::string& endpoint, double connect_timeout_ms)
      : fd_(connect_with_deadline(endpoint, connect_timeout_ms)) {}

  ~SocketWorker() final {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send(const std::string& line) final {
    if (!alive_ || fd_ < 0) return false;
    return send_framed_line(fd_, line, alive_);
  }

  bool receive(std::string& line, double timeout_ms) final {
    return receive_framed_line(fd_, buffer_, line, timeout_ms, alive_);
  }

  bool alive() const final { return alive_; }

  void kill() final {
    // No subprocess to signal: severing the connection both ways is the
    // hard kill (the serve session ends on EOF). The fd itself stays
    // open until destruction so a concurrent receive() never touches a
    // recycled descriptor.
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    alive_ = false;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
  bool alive_ = true;
};

}  // namespace

std::unique_ptr<Worker> InProcessTransport::spawn() {
  ++detail::counters().workers_spawned;
  return std::make_unique<InProcessWorker>(registry_);
}

PipeTransport::PipeTransport(std::vector<std::string> argv)
    : argv_(std::move(argv)) {
  ADEPT_CHECK(!argv_.empty() && !argv_[0].empty(),
              "pipe transport needs a worker command");
  ignore_sigpipe_once();
}

std::unique_ptr<Worker> PipeTransport::spawn() {
  auto worker = std::make_unique<PipeWorker>(argv_);
  ++detail::counters().workers_spawned;
  return worker;
}

SocketTransport::SocketTransport(std::vector<std::string> endpoints,
                                 double connect_timeout_ms)
    : endpoints_(std::move(endpoints)),
      connect_timeout_ms_(connect_timeout_ms) {
  ADEPT_CHECK(!endpoints_.empty(),
              "socket transport needs at least one endpoint");
  for (const std::string& endpoint : endpoints_) {
    std::string host;
    std::string port;
    split_endpoint(endpoint, host, port);  // fail fast on malformed input
  }
  ignore_sigpipe_once();
}

std::unique_ptr<Worker> SocketTransport::spawn() {
  static obs::Histogram& connect_ms =
      obs::MetricsRegistry::process().histogram("dist.socket.connect_ms");
  const std::string& endpoint = endpoints_[next_++ % endpoints_.size()];
  const auto start = std::chrono::steady_clock::now();
  auto worker =
      std::make_unique<SocketWorker>(endpoint, connect_timeout_ms_);
  connect_ms.record(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count());
  ++detail::counters().workers_spawned;
  return worker;
}

ServeListener::ServeListener(std::vector<std::string> argv,
                             double announce_timeout_ms) {
  ADEPT_CHECK(!argv.empty() && !argv[0].empty(),
              "serve listener needs a command");
  ignore_sigpipe_once();
  int from_child[2];  // child stdout → parent reads the announce line
  ADEPT_CHECK(::pipe(from_child) == 0,
              "cannot create listener pipe: " +
                  std::string(std::strerror(errno)));
  pid_ = ::fork();
  ADEPT_CHECK(pid_ >= 0,
              "cannot fork listener: " + std::string(std::strerror(errno)));
  if (pid_ == 0) {
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& arg : argv)
      args.push_back(const_cast<char*>(arg.c_str()));
    args.push_back(nullptr);
    ::execvp(args[0], args.data());
    ::_exit(127);
  }
  ::close(from_child[1]);
  out_fd_ = from_child[0];
  ::fcntl(out_fd_, F_SETFD, FD_CLOEXEC);
  // Wait for the "listening on <host:port>" announce under the pipe
  // receive discipline; anything else (EOF, timeout, garbage) is a
  // spawn failure.
  std::string buffer;
  std::string line;
  bool alive = true;
  const bool announced = receive_framed_line(out_fd_, buffer, line,
                                             announce_timeout_ms, alive);
  const std::string prefix = "listening on ";
  if (!announced || line.rfind(prefix, 0) != 0) {
    kill_now();
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    ::close(out_fd_);
    out_fd_ = -1;
    throw Error("serve listener did not announce an endpoint" +
                (line.empty() ? std::string()
                              : " (got '" + line + "')"));
  }
  endpoint_ = line.substr(prefix.size());
}

ServeListener::~ServeListener() {
  kill_now();
  if (pid_ > 0) {
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }
  if (out_fd_ >= 0) {
    ::close(out_fd_);
    out_fd_ = -1;
  }
}

void ServeListener::kill_now() {
  if (pid_ > 0) ::kill(pid_, SIGKILL);
}

std::vector<std::string> self_serve_command(std::size_t jobs) {
  char path[4096];
  const ssize_t n = ::readlink("/proc/self/exe", path, sizeof path - 1);
  ADEPT_CHECK(n > 0, "cannot resolve /proc/self/exe for worker spawning");
  path[n] = '\0';
  return {std::string(path), "serve", "--jobs", std::to_string(jobs),
          "--cache", "0"};
}

std::vector<std::string> self_serve_listen_command(std::size_t jobs,
                                                   std::size_t max_sessions) {
  std::vector<std::string> argv = self_serve_command(jobs);
  argv.push_back("--listen");
  argv.push_back("127.0.0.1:0");
  if (max_sessions > 0) {
    argv.push_back("--max-sessions");
    argv.push_back(std::to_string(max_sessions));
  }
  return argv;
}

}  // namespace adept::dist
