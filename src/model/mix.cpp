#include "model/mix.hpp"

#include "common/error.hpp"

namespace adept {

ServiceMix::ServiceMix(std::vector<std::pair<ServiceSpec, double>> items)
    : items_(std::move(items)) {
  ADEPT_CHECK(!items_.empty(), "service mix must contain at least one service");
  for (const auto& [service, weight] : items_) {
    ADEPT_CHECK(service.wapp > 0.0,
                "service '" + service.name + "' must have positive W_app");
    ADEPT_CHECK(weight > 0.0,
                "service '" + service.name + "' must have positive weight");
    total_weight_ += weight;
  }
}

double ServiceMix::fraction(std::size_t index) const {
  ADEPT_CHECK(index < items_.size(), "mix index out of range");
  return items_[index].second / total_weight_;
}

MFlop ServiceMix::expected_wapp() const {
  ADEPT_CHECK(!items_.empty(), "empty service mix");
  MFlop expected = 0.0;
  for (std::size_t i = 0; i < items_.size(); ++i)
    expected += fraction(i) * items_[i].first.wapp;
  return expected;
}

ServiceSpec ServiceMix::expected_service() const {
  return ServiceSpec{"mix", expected_wapp()};
}

}  // namespace adept
