#include "hierarchy/adjacency.hpp"

#include <queue>

#include "common/error.hpp"

namespace adept {

AdjacencyMatrix::AdjacencyMatrix(std::size_t node_count)
    : n_(node_count), cells_(node_count * node_count, 0) {
  ADEPT_CHECK(node_count > 0, "adjacency matrix must cover at least one node");
}

std::size_t AdjacencyMatrix::index(NodeId parent, NodeId child) const {
  ADEPT_CHECK(parent < n_ && child < n_, "adjacency index out of range");
  return parent * n_ + child;
}

bool AdjacencyMatrix::at(NodeId parent, NodeId child) const {
  return cells_[index(parent, child)] != 0;
}

void AdjacencyMatrix::set(NodeId parent, NodeId child, bool value) {
  ADEPT_CHECK(parent != child, "a node cannot parent itself");
  cells_[index(parent, child)] = value ? 1 : 0;
}

std::size_t AdjacencyMatrix::out_degree(NodeId node) const {
  std::size_t degree = 0;
  for (NodeId child = 0; child < n_; ++child)
    if (at(node, child)) ++degree;
  return degree;
}

std::size_t AdjacencyMatrix::in_degree(NodeId node) const {
  std::size_t degree = 0;
  for (NodeId parent = 0; parent < n_; ++parent)
    if (at(parent, node)) ++degree;
  return degree;
}

bool AdjacencyMatrix::is_used(NodeId node) const {
  return out_degree(node) > 0 || in_degree(node) > 0;
}

AdjacencyMatrix to_adjacency(const Hierarchy& hierarchy, std::size_t node_count) {
  AdjacencyMatrix matrix(node_count);
  for (Hierarchy::Index i = 0; i < hierarchy.size(); ++i) {
    const auto& element = hierarchy.element(i);
    for (Hierarchy::Index child : element.children)
      matrix.set(element.node, hierarchy.element(child).node);
  }
  return matrix;
}

Hierarchy from_adjacency(const AdjacencyMatrix& matrix) {
  const std::size_t n = matrix.node_count();
  // Locate the root: the unique used node with in-degree 0.
  NodeId root = n;
  std::size_t used = 0;
  for (NodeId node = 0; node < n; ++node) {
    if (!matrix.is_used(node)) continue;
    ++used;
    const std::size_t in = matrix.in_degree(node);
    ADEPT_CHECK(in <= 1, "node " + std::to_string(node) + " has two parents");
    if (in == 0) {
      ADEPT_CHECK(root == n, "adjacency matrix has two roots");
      root = node;
    }
  }
  ADEPT_CHECK(used > 0, "adjacency matrix describes no deployment");
  ADEPT_CHECK(root != n, "adjacency matrix has no root (cycle?)");

  Hierarchy hierarchy;
  std::queue<std::pair<NodeId, Hierarchy::Index>> frontier;
  frontier.emplace(root, hierarchy.add_root(root));
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const auto [node, element] = frontier.front();
    frontier.pop();
    for (NodeId child = 0; child < n; ++child) {
      if (!matrix.at(node, child)) continue;
      ++visited;
      ADEPT_CHECK(visited <= used, "adjacency matrix contains a cycle");
      if (matrix.out_degree(child) > 0)
        frontier.emplace(child, hierarchy.add_agent(element, child));
      else
        hierarchy.add_server(element, child);
    }
  }
  ADEPT_CHECK(visited == used,
              "adjacency matrix is not a single connected tree");
  return hierarchy;
}

}  // namespace adept
