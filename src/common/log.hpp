#pragma once
/// \file log.hpp
/// \brief Minimal leveled logger for the CLI and planners' trace output.
///
/// Planning traces (which node became an agent, why growth stopped) are
/// valuable when validating the heuristic against the paper; they are
/// emitted at Debug level and silenced by default.

#include <sstream>
#include <string>

namespace adept::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_level(Level level);
Level level();

/// Emits a message at `level` to stderr when enabled.
void emit(Level level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  if (level() <= Level::Debug) emit(Level::Debug, detail::concat(args...));
}
template <typename... Args>
void info(Args&&... args) {
  if (level() <= Level::Info) emit(Level::Info, detail::concat(args...));
}
template <typename... Args>
void warn(Args&&... args) {
  if (level() <= Level::Warn) emit(Level::Warn, detail::concat(args...));
}
template <typename... Args>
void error(Args&&... args) {
  if (level() <= Level::Error) emit(Level::Error, detail::concat(args...));
}

}  // namespace adept::log
