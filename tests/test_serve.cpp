/// \file test_serve.cpp
/// \brief End-to-end JSON-lines sessions through io::serve_session — the
/// exact code path `adept serve` wires to stdin/stdout. Each test feeds a
/// scripted session through stringstreams and parses the response lines
/// back with the JSON kernel.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "io/serve.hpp"
#include "io/wire.hpp"
#include "planner/registry.hpp"
#include "planning_test_util.hpp"
#include "platform/generator.hpp"

namespace adept {
namespace {

constexpr MbitRate kB = 1000.0;

/// A deterministic slow planner for admission-control tests: holds its
/// service thread for a fixed beat, then answers homogeneously. Marked
/// shard_aware so portfolios never pick it up.
class SleeperPlanner final : public IPlanner {
 public:
  SleeperPlanner() {
    info_.name = "test-sleeper";
    info_.summary = "sleeps 200 ms, then plans homogeneously (test rig)";
    info_.caps.shard_aware = true;
  }
  const PlannerInfo& info() const override { return info_; }
  PlanResult plan(const PlanRequest& request) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return PlannerRegistry::instance().at("homogeneous").plan(request);
  }

 private:
  PlannerInfo info_;
};

const PlannerRegistration kSleeper(std::make_unique<SleeperPlanner>());

std::string platform_json(std::uint64_t seed = 9, std::size_t n = 14) {
  Rng rng(seed);
  return wire::to_json(gen::uniform(n, 300.0, 1200.0, kB, rng)).dump();
}

/// Runs a session over the given input lines; returns (answered count,
/// parsed response documents).
std::pair<std::size_t, std::vector<json::Value>> run_session(
    const std::vector<std::string>& lines, io::ServeConfig config = {}) {
  std::stringstream in, out;
  for (const std::string& line : lines) in << line << "\n";
  if (config.threads == 0) config.threads = 2;
  const std::size_t answered = io::serve_session(in, out, config);
  std::vector<json::Value> responses;
  std::string line;
  while (std::getline(out, line))
    if (!line.empty()) responses.push_back(json::parse(line));
  return {answered, responses};
}

TEST(Serve, AnswersAPipedSessionInOrder) {
  const std::string platform = platform_json();
  const auto [answered, responses] = run_session({
      R"({"id":"first","planner":"heuristic","platform":)" + platform +
          R"(,"service":"dgemm-310"})",
      R"({"id":2,"planner":"star","platform":)" + platform +
          R"(,"service":"dgemm-310"})",
      R"({"id":"third","planner":"balanced","platform":)" + platform +
          R"(,"service":{"name":"custom","wapp":120.5}})",
  });
  EXPECT_EQ(answered, 3u);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].at("id").as_string(), "first");
  EXPECT_EQ(responses[1].at("id").as_number(), 2.0);
  EXPECT_EQ(responses[2].at("id").as_string(), "third");
  for (const json::Value& response : responses) {
    EXPECT_TRUE(response.at("ok").as_bool()) << response.dump();
    const PlannerRun run = wire::planner_run_from_json(response.at("run"));
    EXPECT_TRUE(run.ok);
    EXPECT_GT(run.result.nodes_used(), 0u);
    EXPECT_TRUE(run.result.hierarchy.validate().empty());
  }
}

TEST(Serve, RepeatedRequestsHitThePlanCache) {
  const std::string platform = platform_json(21);
  const std::string request = R"({"planner":"heuristic","platform":)" +
                              platform + R"(,"service":"dgemm-310"})";
  // One worker serialises the pipelined jobs: the first request has
  // inserted its plan before the second is admitted, so the second is a
  // plain (non-coalesced) cache hit.
  io::ServeConfig config;
  config.threads = 1;
  const auto [answered, responses] =
      run_session({request, request, R"({"cmd":"stats"})"}, config);
  EXPECT_EQ(answered, 2u);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_FALSE(responses[0].at("run").at("cached").as_bool());
  EXPECT_TRUE(responses[1].at("run").at("cached").as_bool());
  // Both answers carry the identical plan.
  EXPECT_EQ(responses[0].at("run").at("result").dump(),
            responses[1].at("run").at("result").dump());
  const json::Value& stats = responses[2].at("stats");
  EXPECT_EQ(stats.at("cache_hits").as_number(), 1.0);
  EXPECT_EQ(stats.at("cache_misses").as_number(), 1.0);
  EXPECT_EQ(stats.at("cache_coalesced").as_number(), 0.0);
  EXPECT_EQ(stats.at("jobs").as_number(), 2.0);
}

TEST(Serve, ConcurrentIdenticalRequestsCoalesceOntoOnePlan) {
  const std::string platform = platform_json(24);
  const std::string request = R"({"planner":"heuristic","platform":)" +
                              platform + R"(,"service":"dgemm-310"})";
  // Many workers admit the pipelined identical requests concurrently.
  // Single-flight coalescing guarantees exactly one of them plans (one
  // miss); every other job either waits on that leader (coalesced hit)
  // or finds the finished entry (plain hit) — under every scheduling,
  // misses == 1 and hits == N - 1, which is what this test pins.
  constexpr std::size_t kRequests = 8;
  io::ServeConfig config;
  config.threads = 4;
  std::vector<std::string> lines(kRequests, request);
  lines.push_back(R"({"cmd":"stats"})");
  const auto [answered, responses] = run_session(lines, config);
  EXPECT_EQ(answered, kRequests);
  ASSERT_EQ(responses.size(), kRequests + 1);
  for (std::size_t i = 1; i < kRequests; ++i)
    EXPECT_EQ(responses[0].at("run").at("result").dump(),
              responses[i].at("run").at("result").dump());
  const json::Value& stats = responses[kRequests].at("stats");
  EXPECT_EQ(stats.at("cache_misses").as_number(), 1.0);
  EXPECT_EQ(stats.at("cache_hits").as_number(),
            static_cast<double>(kRequests - 1));
  EXPECT_EQ(stats.at("jobs").as_number(), static_cast<double>(kRequests));
}

TEST(Serve, CacheCanBeDisabledPerSession) {
  const std::string platform = platform_json(22);
  const std::string request = R"({"planner":"star","platform":)" + platform +
                              R"(,"service":"dgemm-100"})";
  io::ServeConfig config;
  config.cache = {};
  const auto [answered, responses] =
      run_session({request, request, R"({"cmd":"stats"})"}, config);
  EXPECT_EQ(answered, 2u);
  EXPECT_FALSE(responses[1].at("run").at("cached").as_bool());
  EXPECT_EQ(responses[2].at("stats").at("cache_hits").as_number(), 0.0);
}

TEST(Serve, StatsExposeTheShardCacheAndEchoTheCacheConfig) {
  // Shard cache on, whole-plan cache off: the second identical sharded
  // request re-plans but answers every shard from the worker's shard
  // cache — visible as exact hit/miss counts in the stats response,
  // which also echoes the session's effective CacheConfig.
  const std::string platform = platform_json(27, 16);
  const std::string request = R"({"planner":"sharded","platform":)" +
                              platform +
                              R"(,"service":"dgemm-310","options":{"shards":4}})";
  io::ServeConfig config;
  config.threads = 1;
  config.cache = CacheConfig{/*plan_capacity=*/0, /*shard_capacity=*/32,
                             /*coalesce=*/false};
  const auto [answered, responses] =
      run_session({request, request, R"({"cmd":"stats"})"}, config);
  EXPECT_EQ(answered, 2u);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_FALSE(responses[1].at("run").at("cached").as_bool());
  // Bit-identical answers: warm shard-cache hits change nothing.
  EXPECT_EQ(responses[0].at("run").at("result").dump(),
            responses[1].at("run").at("result").dump());
  const json::Value& shard = responses[2].at("stats").at("shard_cache");
  EXPECT_EQ(shard.at("capacity").as_number(), 32.0);
  EXPECT_EQ(shard.at("size").as_number(), 4.0);
  EXPECT_EQ(shard.at("misses").as_number(), 4.0);
  EXPECT_EQ(shard.at("insertions").as_number(), 4.0);
  EXPECT_EQ(shard.at("hits").as_number(), 4.0);
  EXPECT_EQ(shard.at("evictions").as_number(), 0.0);
  const json::Value& cache = responses[2].at("stats").at("serve").at("cache");
  EXPECT_EQ(cache.at("plan_capacity").as_number(), 0.0);
  EXPECT_EQ(cache.at("shard_capacity").as_number(), 32.0);
  EXPECT_FALSE(cache.at("coalesce").as_bool());
}

TEST(Serve, PortfolioRequestsReturnTheWholePortfolio) {
  const std::string platform = platform_json(25);
  const auto [answered, responses] = run_session({
      R"({"id":"p","planner":"portfolio","platform":)" + platform +
          R"(,"service":"dgemm-310","options":{"demand":50}})",
  });
  EXPECT_EQ(answered, 1u);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].at("ok").as_bool()) << responses[0].dump();
  const PortfolioResult portfolio =
      wire::portfolio_from_json(responses[0].at("portfolio"));
  ASSERT_TRUE(portfolio.has_winner());
  EXPECT_GE(portfolio.runs.size(), 2u);
  EXPECT_TRUE(portfolio.best().ok);
}

TEST(Serve, MalformedLinesProduceErrorsWithoutKillingTheSession) {
  const std::string platform = platform_json(27);
  const auto [answered, responses] = run_session({
      "this is not json",
      R"({"id":"bad-platform","planner":"star","platform":{"bandwidth":-1,"nodes":[]},"service":"dgemm-100"})",
      R"({"id":"bad-planner","planner":"no-such","platform":)" + platform +
          R"(,"service":"dgemm-100"})",
      R"({"id":"fine","planner":"star","platform":)" + platform +
          R"(,"service":"dgemm-100"})",
  });
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_FALSE(responses[0].at("ok").as_bool());
  EXPECT_TRUE(responses[0].at("id").is_null());
  EXPECT_FALSE(responses[1].at("ok").as_bool());
  EXPECT_EQ(responses[1].at("id").as_string(), "bad-platform");
  EXPECT_FALSE(responses[2].at("ok").as_bool());
  EXPECT_NE(responses[2].at("error").as_string().find("unknown planner"),
            std::string::npos);
  EXPECT_TRUE(responses[3].at("ok").as_bool());
  // Only the request that actually planned counts as answered... plus the
  // two submitted ones that failed (planner error is still an answer).
  EXPECT_EQ(answered, 2u);  // bad-planner + fine went through the service
}

TEST(Serve, ErrorResponsesKeepRequestOrder) {
  // A line that fails deserialization must wait its response slot behind
  // earlier in-flight requests — clients reading positionally depend on
  // the one-response-per-request-in-order contract.
  const std::string platform = platform_json(37);
  const auto [answered, responses] = run_session({
      R"({"id":"slow","planner":"heuristic","platform":)" + platform +
          R"(,"service":"dgemm-310"})",
      R"({"id":"broken","planner":"star","platform":{"bandwidth":-5,"nodes":[]},"service":"dgemm-100"})",
  });
  EXPECT_EQ(answered, 1u);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].at("id").as_string(), "slow");
  EXPECT_TRUE(responses[0].at("ok").as_bool());
  EXPECT_EQ(responses[1].at("id").as_string(), "broken");
  EXPECT_FALSE(responses[1].at("ok").as_bool());
}

TEST(Serve, BudgetIsEnforced) {
  const std::string platform = platform_json(33);
  const auto [answered, responses] = run_session({
      R"({"id":"late","planner":"heuristic","platform":)" + platform +
          R"(,"service":"dgemm-310","budget_ms":0.000001})",
  });
  EXPECT_EQ(answered, 1u);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].at("ok").as_bool());
  const PlannerRun run = wire::planner_run_from_json(responses[0].at("run"));
  EXPECT_TRUE(run.skipped);
  EXPECT_NE(run.error.find("deadline"), std::string::npos) << run.error;
}

TEST(Serve, QuitStopsTheSessionEarly) {
  const std::string platform = platform_json(35);
  const std::string request = R"({"planner":"star","platform":)" + platform +
                              R"(,"service":"dgemm-100"})";
  const auto [answered, responses] =
      run_session({request, R"({"cmd":"quit"})", request, request});
  EXPECT_EQ(answered, 1u);  // requests after quit are never read
  EXPECT_EQ(responses.size(), 1u);
}

TEST(Serve, OptionsExclusionsAreHonoured) {
  Rng rng(39);
  const Platform platform = gen::uniform(12, 300.0, 1200.0, kB, rng);
  const auto [answered, responses] = run_session({
      R"({"planner":"heuristic","platform":)" +
          wire::to_json(platform).dump() +
          R"(,"service":"dgemm-310","options":{"excluded":[0,3]}})",
  });
  EXPECT_EQ(answered, 1u);
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_TRUE(responses[0].at("ok").as_bool()) << responses[0].dump();
  const PlannerRun run = wire::planner_run_from_json(responses[0].at("run"));
  for (const NodeId used : run.result.hierarchy.used_nodes()) {
    EXPECT_NE(used, 0u);
    EXPECT_NE(used, 3u);
  }
}

TEST(Serve, MetricsCommandExposesLatencyQuantilesAndCacheRates) {
  const std::string platform = platform_json(51);
  const std::string request = R"({"planner":"heuristic","platform":)" +
                              platform + R"(,"service":"dgemm-310"})";
  // One worker serialises the jobs: request #2 is a plain cache hit, so
  // the registry must show exactly one heuristic planning run alongside
  // two service-level jobs.
  io::ServeConfig config;
  config.threads = 1;
  const auto [answered, responses] =
      run_session({request, request, R"({"cmd":"metrics"})"}, config);
  EXPECT_EQ(answered, 2u);
  ASSERT_EQ(responses.size(), 3u);
  const json::Value& reply = responses[2];
  EXPECT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  const json::Value& metrics = reply.at("metrics");
  const json::Value& counters = metrics.at("counters");
  EXPECT_EQ(counters.at("service.cache.hits").as_number(), 1.0);
  EXPECT_EQ(counters.at("service.cache.misses").as_number(), 1.0);
  EXPECT_EQ(counters.at("service.planner.heuristic.cache_hits").as_number(),
            1.0);
  EXPECT_EQ(counters.at("serve.answered").as_number(), 2.0);

  const json::Value& histograms = metrics.at("histograms");
  // The aggregate job histogram doubles as the jobs/wall ledger: both
  // requests count, cached or not.
  EXPECT_EQ(histograms.at("service.plan.latency_ms").at("count").as_number(),
            2.0);
  // Per-planner latency counts *planning* runs only — the cache hit
  // never re-ran the heuristic.
  const json::Value& heuristic =
      histograms.at("service.planner.heuristic.latency_ms");
  EXPECT_EQ(heuristic.at("count").as_number(), 1.0);
  for (const char* q : {"p50", "p90", "p95", "p99"}) {
    EXPECT_GE(heuristic.at(q).as_number(), heuristic.at("min").as_number());
    EXPECT_LE(heuristic.at(q).as_number(), heuristic.at("max").as_number());
  }
  EXPECT_EQ(histograms.at("service.queue_wait_ms").at("count").as_number(),
            2.0);
  // Serve's own end-to-end span: the two counted answers.
  EXPECT_EQ(histograms.at("serve.request_ms").at("count").as_number(), 2.0);
}

TEST(Serve, RetryAfterFallsBackToTheDocumentedDefault) {
  const std::string platform = platform_json(53);
  io::ServeConfig config;
  config.threads = 1;
  config.cache = {};
  config.max_pending = 1;
  // The refusal happens while the sleeper still holds the only slot, i.e.
  // before *any* job has completed: the estimate has no observed per-job
  // wall time to scale and must return the documented 100 ms default —
  // not a degenerate 0 or a depth-scaled garbage value.
  const auto [answered, responses] = run_session(
      {
          R"({"id":"slow","planner":"test-sleeper","platform":)" + platform +
              R"(,"service":"dgemm-310"})",
          R"({"id":"refused","planner":"heuristic","platform":)" + platform +
              R"(,"service":"dgemm-310"})",
      },
      config);
  EXPECT_EQ(answered, 1u);
  ASSERT_EQ(responses.size(), 2u);
  const json::Value& refused = responses[1];
  EXPECT_EQ(refused.at("status").as_string(), "overloaded");
  EXPECT_DOUBLE_EQ(refused.at("retry_after_ms").as_number(), 100.0);
}

TEST(Serve, UnknownCommandIsAnError) {
  const auto [answered, responses] = run_session({R"({"cmd":"reboot"})"});
  EXPECT_EQ(answered, 0u);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].at("ok").as_bool());
  EXPECT_NE(responses[0].at("error").as_string().find("unknown command"),
            std::string::npos);
}

// --------------------------------------------------- admission control --

TEST(Serve, FullQueueRefusesWithAnOverloadedResponse) {
  const std::string platform = platform_json(41);
  io::ServeConfig config;
  config.threads = 1;
  config.cache = {};
  config.max_pending = 1;
  // The sleeper holds the admitted slot for 200 ms; the second request
  // arrives at a full queue and must be refused, not planned.
  const auto [answered, responses] = run_session(
      {
          R"({"id":"slow","planner":"test-sleeper","platform":)" + platform +
              R"(,"service":"dgemm-310"})",
          R"({"id":"refused","planner":"heuristic","platform":)" + platform +
              R"(,"service":"dgemm-310"})",
          R"({"cmd":"stats"})",
      },
      config);
  EXPECT_EQ(answered, 1u);  // the refusal is not an answered plan
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].at("ok").as_bool()) << responses[0].dump();
  const json::Value& refused = responses[1];
  EXPECT_EQ(refused.at("id").as_string(), "refused");
  EXPECT_FALSE(refused.at("ok").as_bool());
  EXPECT_EQ(refused.at("status").as_string(), "overloaded");
  EXPECT_GE(refused.at("retry_after_ms").as_number(), 1.0);
  EXPECT_NE(refused.at("error").as_string().find("overloaded"),
            std::string::npos);
  const json::Value& serve = responses[2].at("stats").at("serve");
  EXPECT_EQ(serve.at("max_pending").as_number(), 1.0);
  EXPECT_EQ(serve.at("overloaded").as_number(), 1.0);
  EXPECT_EQ(serve.at("degraded").as_number(), 0.0);
}

TEST(Serve, DegradeAnswersOverloadRequestsWithTheCheapPlanner) {
  const std::string platform = platform_json(43);
  io::ServeConfig config;
  config.threads = 1;
  config.cache = {};
  config.max_pending = 1;
  config.degrade = true;
  const auto [answered, responses] = run_session(
      {
          R"({"id":"slow","planner":"test-sleeper","platform":)" + platform +
              R"(,"service":"dgemm-310"})",
          R"({"id":"cheap","planner":"heuristic","platform":)" + platform +
              R"(,"service":"dgemm-310"})",
          R"({"cmd":"stats"})",
      },
      config);
  EXPECT_EQ(answered, 2u);  // a degraded answer is still an answer
  ASSERT_EQ(responses.size(), 3u);
  const json::Value& degraded = responses[1];
  EXPECT_EQ(degraded.at("id").as_string(), "cheap");
  EXPECT_TRUE(degraded.at("ok").as_bool()) << degraded.dump();
  EXPECT_TRUE(degraded.at("degraded").as_bool());
  const PlannerRun run = wire::planner_run_from_json(degraded.at("run"));
  EXPECT_TRUE(run.ok);
  EXPECT_TRUE(run.result.hierarchy.validate().empty());
  const json::Value& serve = responses[2].at("stats").at("serve");
  EXPECT_EQ(serve.at("degraded").as_number(), 1.0);
  EXPECT_EQ(serve.at("overloaded").as_number(), 0.0);
}

TEST(Serve, DegradeRescuesOverBudgetRequests) {
  // Same request BudgetIsEnforced uses — with degrade on, the deadline
  // error is replaced by a budget-free homogeneous answer.
  const std::string platform = platform_json(33);
  io::ServeConfig config;
  config.degrade = true;
  const auto [answered, responses] = run_session(
      {
          R"({"id":"late","planner":"heuristic","platform":)" + platform +
              R"(,"service":"dgemm-310","budget_ms":0.000001})",
      },
      config);
  EXPECT_EQ(answered, 1u);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].at("ok").as_bool()) << responses[0].dump();
  EXPECT_TRUE(responses[0].at("degraded").as_bool());
  const PlannerRun run = wire::planner_run_from_json(responses[0].at("run"));
  EXPECT_TRUE(run.ok);
  EXPECT_FALSE(run.skipped);
}

TEST(Serve, CancelReachesRequestsStillWaitingInTheQueue) {
  const std::string platform = platform_json(45);
  io::ServeConfig config;
  config.threads = 1;
  config.cache = {};
  // The sleeper occupies the single service thread, so "victim" is still
  // queued when the cancel command arrives.
  const auto [answered, responses] = run_session(
      {
          R"({"id":"slow","planner":"test-sleeper","platform":)" + platform +
              R"(,"service":"dgemm-310"})",
          R"({"id":"victim","planner":"heuristic","platform":)" + platform +
              R"(,"service":"dgemm-310"})",
          R"({"cmd":"cancel","id":"victim"})",
          R"({"id":"after","planner":"heuristic","platform":)" + platform +
              R"(,"service":"dgemm-310"})",
      },
      config);
  EXPECT_EQ(answered, 3u);  // slow + victim (a cancelled run answers) + after
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_TRUE(responses[0].at("ok").as_bool()) << responses[0].dump();
  const json::Value& victim = responses[1];
  EXPECT_EQ(victim.at("id").as_string(), "victim");
  EXPECT_FALSE(victim.at("ok").as_bool());
  EXPECT_NE(victim.at("error").as_string().find("cancelled"),
            std::string::npos)
      << victim.dump();
  EXPECT_TRUE(responses[2].at("ok").as_bool());
  EXPECT_EQ(responses[2].at("cancelled").as_number(), 1.0);
  EXPECT_TRUE(responses[3].at("ok").as_bool()) << responses[3].dump();
  EXPECT_EQ(responses[3].at("id").as_string(), "after");
}

TEST(Serve, CancelWithoutAnIdIsAnError) {
  const auto [answered, responses] = run_session({R"({"cmd":"cancel"})"});
  EXPECT_EQ(answered, 0u);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].at("ok").as_bool());
  EXPECT_NE(responses[0].at("error").as_string().find("cancel"),
            std::string::npos);
}

/// An output sink whose flush stalls — a stand-in for a client that
/// reads its responses slowly. The writer thread blocks in write();
/// the reader must keep admitting and the order contract must hold.
class SlowSink : public std::streambuf {
 public:
  std::string text;

 protected:
  int overflow(int ch) override {
    if (ch != traits_type::eof()) text.push_back(static_cast<char>(ch));
    return ch;
  }
  int sync() override {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return 0;
  }
};

TEST(Serve, SlowReaderStallsTheWriterNotTheSession) {
  const std::string platform = platform_json(47);
  std::stringstream in;
  for (const std::string& id : {"a", "b", "c", "d"})
    in << R"({"id":")" << id << R"(","planner":"star","platform":)"
       << platform << R"(,"service":"dgemm-100"})" << "\n";
  SlowSink sink;
  std::ostream out(&sink);
  io::ServeConfig config;
  config.threads = 2;
  config.cache = {};
  const std::size_t answered = io::serve_session(in, out, config);
  EXPECT_EQ(answered, 4u);
  std::vector<json::Value> responses;
  std::stringstream lines(sink.text);
  std::string line;
  while (std::getline(lines, line))
    if (!line.empty()) responses.push_back(json::parse(line));
  ASSERT_EQ(responses.size(), 4u);
  const std::vector<std::string> order = {"a", "b", "c", "d"};
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(responses[i].at("id").as_string(), order[i]);
    EXPECT_TRUE(responses[i].at("ok").as_bool()) << responses[i].dump();
  }
}

}  // namespace
}  // namespace adept
