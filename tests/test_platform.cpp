/// \file test_platform.cpp
/// \brief Unit tests for the platform model, generators and file I/O.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "platform/generator.hpp"
#include "platform/io.hpp"
#include "platform/platform.hpp"

namespace adept {
namespace {

// ------------------------------------------------------------- platform --

TEST(Platform, ConstructionValidates) {
  EXPECT_NO_THROW(Platform({{"a", 100.0}, {"b", 50.0}}, 1000.0));
  EXPECT_THROW(Platform({{"a", 100.0}}, 0.0), Error);         // bad bandwidth
  EXPECT_THROW(Platform({{"a", -1.0}}, 1000.0), Error);       // bad power
  EXPECT_THROW(Platform({{"", 1.0}}, 1000.0), Error);         // empty name
  EXPECT_THROW(Platform({{"a", 1.0}, {"a", 2.0}}, 1000.0), Error);  // dup name
}

TEST(Platform, AddNodeRejectsDuplicates) {
  Platform platform({{"a", 100.0}}, 1000.0);
  EXPECT_EQ(platform.add_node({"b", 200.0}), 1u);
  EXPECT_THROW(platform.add_node({"a", 300.0}), Error);
  EXPECT_EQ(platform.size(), 2u);
}

TEST(Platform, AggregateQueries) {
  Platform platform({{"a", 100.0}, {"b", 300.0}, {"c", 200.0}}, 1000.0);
  EXPECT_DOUBLE_EQ(platform.total_power(), 600.0);
  EXPECT_DOUBLE_EQ(platform.min_power(), 100.0);
  EXPECT_DOUBLE_EQ(platform.max_power(), 300.0);
  EXPECT_DOUBLE_EQ(platform.heterogeneity_ratio(), 3.0);
  EXPECT_FALSE(platform.is_homogeneous());
}

TEST(Platform, HomogeneityDetection) {
  EXPECT_TRUE(gen::homogeneous(5, 750.0, 100.0).is_homogeneous());
  Platform single({{"only", 1.0}}, 1.0);
  EXPECT_TRUE(single.is_homogeneous());
}

TEST(Platform, IdsByPowerDescIsStable) {
  Platform platform({{"a", 100.0}, {"b", 300.0}, {"c", 300.0}, {"d", 50.0}},
                    1000.0);
  const auto ids = platform.ids_by_power_desc();
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], 1u);  // b before c: equal power, lower id first
  EXPECT_EQ(ids[1], 2u);
  EXPECT_EQ(ids[2], 0u);
  EXPECT_EQ(ids[3], 3u);
}

TEST(Platform, SubsetPreservesOrderAndBandwidth) {
  Platform platform({{"a", 1.0}, {"b", 2.0}, {"c", 3.0}}, 512.0);
  const Platform sub = platform.subset({2, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.node(0).name, "c");
  EXPECT_EQ(sub.node(1).name, "a");
  EXPECT_DOUBLE_EQ(sub.bandwidth(), 512.0);
}

TEST(Platform, NodeOutOfRangeThrows) {
  Platform platform({{"a", 1.0}}, 1.0);
  EXPECT_THROW(platform.node(1), Error);
}

// ----------------------------------------------------------- generators --

TEST(Generators, HomogeneousAllEqual) {
  const Platform platform = gen::homogeneous(8, 1234.5, 100.0);
  EXPECT_EQ(platform.size(), 8u);
  for (const auto& node : platform.nodes()) EXPECT_DOUBLE_EQ(node.power, 1234.5);
}

TEST(Generators, UniformStaysInBounds) {
  Rng rng(3);
  const Platform platform = gen::uniform(100, 200.0, 1200.0, 1000.0, rng);
  for (const auto& node : platform.nodes()) {
    EXPECT_GE(node.power, 200.0);
    EXPECT_LT(node.power, 1200.0);
  }
}

TEST(Generators, UniformIsDeterministicPerSeed) {
  Rng rng1(42), rng2(42);
  const Platform a = gen::uniform(20, 100.0, 500.0, 1000.0, rng1);
  const Platform b = gen::uniform(20, 100.0, 500.0, 1000.0, rng2);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a.node(i).power, b.node(i).power);
}

TEST(Generators, BimodalCreatesTwoBands) {
  Rng rng(5);
  const Platform platform = gen::bimodal(100, 1000.0, 0.5, 0.3, 1000.0, rng, 0.0);
  std::size_t slow = 0;
  for (const auto& node : platform.nodes())
    if (node.power < 500.0) ++slow;
  EXPECT_EQ(slow, 50u);
}

TEST(Generators, ClusteredGeometricGroups) {
  const Platform platform = gen::clustered(10, 2, 1000.0, 0.5, 1000.0);
  EXPECT_EQ(platform.size(), 10u);
  EXPECT_DOUBLE_EQ(platform.node(0).power, 1000.0);
  EXPECT_DOUBLE_EQ(platform.node(9).power, 500.0);
}

TEST(Generators, PowerLawClampedToBounds) {
  Rng rng(11);
  const Platform platform = gen::power_law(200, 100.0, 2000.0, 1.2, 1000.0, rng);
  for (const auto& node : platform.nodes()) {
    EXPECT_GE(node.power, 100.0);
    EXPECT_LE(node.power, 2000.0);
  }
}

TEST(Generators, OrsayLoadedIsHeterogeneous) {
  Rng rng(1);
  const Platform platform = gen::grid5000_orsay_loaded(200, rng);
  EXPECT_EQ(platform.size(), 200u);
  EXPECT_GT(platform.heterogeneity_ratio(), 1.5);
  // Loaded nodes never exceed the unloaded Linpack rate.
  EXPECT_LE(platform.max_power(), 200.0 + 1e-9);
  EXPECT_GE(platform.min_power(), 0.2 * 200.0 - 1e-9);
}

TEST(Generators, RejectBadArguments) {
  Rng rng(1);
  EXPECT_THROW(gen::homogeneous(0, 1.0, 1.0), Error);
  EXPECT_THROW(gen::uniform(5, 10.0, 5.0, 1.0, rng), Error);
  EXPECT_THROW(gen::bimodal(5, 1.0, 1.5, 0.5, 1.0, rng), Error);
  EXPECT_THROW(gen::clustered(5, 6, 1.0, 0.5, 1.0), Error);
  EXPECT_THROW(gen::power_law(5, 1.0, 2.0, 0.0, 1.0, rng), Error);
}

// ------------------------------------------------------------------- io --

TEST(PlatformIo, ParsesFullGrammar) {
  const std::string text = R"(# a comment
bandwidth 1000   # trailing comment
node alpha 750.5
nodes worker 3 500
)";
  const Platform platform = io::parse_platform(text);
  EXPECT_DOUBLE_EQ(platform.bandwidth(), 1000.0);
  ASSERT_EQ(platform.size(), 4u);
  EXPECT_EQ(platform.node(0).name, "alpha");
  EXPECT_DOUBLE_EQ(platform.node(0).power, 750.5);
  EXPECT_EQ(platform.node(1).name, "worker-0");
  EXPECT_EQ(platform.node(3).name, "worker-2");
  EXPECT_DOUBLE_EQ(platform.node(2).power, 500.0);
}

TEST(PlatformIo, RoundTripsThroughSerialize) {
  Rng rng(17);
  const Platform original = gen::uniform(25, 100.0, 900.0, 512.0, rng);
  const Platform parsed = io::parse_platform(io::serialize_platform(original));
  ASSERT_EQ(parsed.size(), original.size());
  EXPECT_DOUBLE_EQ(parsed.bandwidth(), original.bandwidth());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed.node(i).name, original.node(i).name);
    EXPECT_NEAR(parsed.node(i).power, original.node(i).power,
                1e-9 * original.node(i).power);
  }
}

TEST(PlatformIo, ErrorsCarryLineNumbers) {
  try {
    io::parse_platform("bandwidth 100\nnode broken\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(PlatformIo, RejectsStructuralProblems) {
  EXPECT_THROW(io::parse_platform("node a 100\n"), Error);   // no bandwidth
  EXPECT_THROW(io::parse_platform("bandwidth 100\n"), Error);  // no nodes
  EXPECT_THROW(io::parse_platform("bandwidth 100\nbandwidth 200\nnode a 1\n"),
               Error);  // duplicate bandwidth
  EXPECT_THROW(io::parse_platform("bandwidth 100\nwibble a 1\n"), Error);
  EXPECT_THROW(io::parse_platform("bandwidth 100\nnode a -5\n"), Error);
  EXPECT_THROW(io::parse_platform("bandwidth 100\nnode a 1\nnode a 2\n"),
               Error);  // duplicate node name
}

TEST(PlatformIo, LoadMissingFileThrows) {
  EXPECT_THROW(io::load_platform("/nonexistent/path/platform.txt"), Error);
}

}  // namespace
}  // namespace adept
