#pragma once
/// \file simulator.hpp
/// \brief Discrete-event simulation of a deployed DIET-style hierarchy.
///
/// This is ADePT's substitute for the paper's Grid'5000 testbed. It
/// executes the request lifecycle of Figure 1 — client → root agent,
/// broadcast down the tree, per-server prediction, replies merged upward,
/// best-server selection, then the direct client → server service phase —
/// on resources that obey the paper's M(r,s,w) model: every node is
/// strictly serial (it sends one message, receives one message, or
/// computes — never two at once) and links are homogeneous with
/// store-and-forward accounting (each endpoint is busy for size/B, which
/// is exactly what Eqs 1–4 charge).
///
/// On top of the analytic model's costs, the simulator charges two kinds
/// of real-world overhead the model ignores: a per-message network latency
/// and a fixed per-operation middleware overhead (CORBA marshalling,
/// thread wake-ups). These reproduce the paper's measured-below-predicted
/// gap at small request grain (Fig 3) while leaving large-grain runs
/// model-dominated (Fig 5).

#include <cstdint>
#include <vector>

#include "hierarchy/hierarchy.hpp"
#include "model/mix.hpp"
#include "model/parameters.hpp"
#include "model/service.hpp"
#include "platform/platform.hpp"

namespace adept::sim {

/// Simulation knobs. Defaults are calibrated against the Lyon cluster
/// behaviour described in §5.1 (see bench_table3_calibration).
struct SimConfig {
  /// One-way network latency added to every message delivery (seconds).
  Seconds message_latency = 1e-4;
  /// Fixed overhead added to each of the two agent computations per
  /// request (request processing, reply merge). Models middleware costs
  /// outside the analytic model.
  Seconds agent_compute_overhead = 2.5e-4;
  /// Fixed overhead added to each server computation (prediction and
  /// service execution).
  Seconds server_compute_overhead = 1.25e-4;
  /// Delay between successive client launches (the paper launches one
  /// client script per second; we compress time).
  Seconds client_stagger = 5e-3;
  /// Service computations are sliced into chunks of this length so that
  /// scheduling-phase work (tiny prediction requests) can interleave, the
  /// way a real server thread-switches. The node's *total* busy time is
  /// unchanged — M(r,s,w) still serialises everything — only the blocking
  /// granularity is bounded. Without this, one multi-second DGEMM would
  /// stall every scheduling broadcast that crosses its server.
  Seconds service_slice = 5e-2;
  /// Ramp-up excluded from measurement. Effective warmup is extended to
  /// cover the client ramp automatically.
  Seconds warmup = 3.0;
  /// Length of the steady-state measurement window.
  Seconds measure = 8.0;
  /// Seed for the (deterministic) per-request service draw when the
  /// workload is a ServiceMix.
  std::uint64_t seed = 0x5EEDULL;
  /// Cap on collected per-request service-time samples (forecaster input).
  std::size_t max_service_samples = 20000;
};

/// One measured service execution, as a client-side observer would record
/// it: which mix item ran, on how strong a node, and the wall time from
/// service start to completion (including any interleaved scheduling work
/// on that node — the same contamination a real measurement carries).
struct ServiceSample {
  std::size_t service = 0;  ///< Index into the ServiceMix.
  MFlopRate power = 0.0;    ///< Power of the executing node.
  Seconds seconds = 0.0;    ///< Observed execution wall time.
};

/// Measurements from one simulation run.
struct SimResult {
  RequestRate throughput = 0.0;  ///< Completions in window / window length.
  std::size_t issued = 0;        ///< Requests entering the system (whole run).
  std::size_t completed = 0;     ///< Service responses delivered (whole run).
  std::size_t completed_in_window = 0;
  Seconds mean_response_time = 0.0;  ///< Mean client round-trip in window.
  Seconds max_response_time = 0.0;
  Seconds end_time = 0.0;  ///< Simulated time when the run stopped.
  /// Per-element busy seconds split by kind, aligned with hierarchy
  /// element indices. Used by the calibration substrate.
  std::vector<Seconds> compute_busy;
  std::vector<Seconds> comm_busy;
  /// Service-phase completions per element index (non-zero for servers
  /// only); compares against the model's Eq-8 shares.
  std::vector<std::size_t> server_completions;
  /// Scheduling-phase completions observed at the root.
  std::size_t scheduled = 0;
  /// Completions per mix item (whole run); size = mix size.
  std::vector<std::size_t> completions_per_service;
  /// Observed service executions (capped by SimConfig::max_service_samples).
  std::vector<ServiceSample> service_samples;
};

/// Simulates `clients` concurrent clients (each running one request at a
/// time in a loop, like the paper's client scripts) against the
/// deployment. Deterministic: same inputs give identical results.
/// Honours per-node link bandwidths when the platform sets them.
SimResult simulate(const Hierarchy& hierarchy, const Platform& platform,
                   const MiddlewareParams& params, const ServiceSpec& service,
                   std::size_t clients, const SimConfig& config = {});

/// As simulate(), but clients draw each request's service from a weighted
/// mix (the multi-application scenario of the paper's future work).
SimResult simulate_mix(const Hierarchy& hierarchy, const Platform& platform,
                       const MiddlewareParams& params, const ServiceMix& mix,
                       std::size_t clients, const SimConfig& config = {});

/// One point of a throughput-vs-load curve.
struct LoadPoint {
  std::size_t clients = 0;
  RequestRate throughput = 0.0;
  Seconds mean_response_time = 0.0;
};

/// Runs simulate() for each client count (independently, in parallel on
/// `threads` workers; 0 = all cores) and returns the curve — the
/// measurement procedure behind Figures 2, 4, 6 and 7.
std::vector<LoadPoint> load_sweep(const Hierarchy& hierarchy,
                                  const Platform& platform,
                                  const MiddlewareParams& params,
                                  const ServiceSpec& service,
                                  const std::vector<std::size_t>& client_counts,
                                  const SimConfig& config = {},
                                  std::size_t threads = 0);

/// Largest throughput over a curve (the paper's "maximum sustained
/// throughput" of a deployment).
RequestRate peak_throughput(const std::vector<LoadPoint>& curve);

}  // namespace adept::sim
