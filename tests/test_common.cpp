/// \file test_common.cpp
/// \brief Unit tests for the common utilities (stats, rng, strings,
/// tables, argparse, thread pool).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/argparse.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

namespace adept {
namespace {

// ---------------------------------------------------------------- stats --

TEST(Stats, MeanOfConstants) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 3.0);
}

TEST(Stats, MeanRejectsEmpty) {
  EXPECT_THROW(stats::mean({}), Error);
}

TEST(Stats, StddevKnownValue) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample stddev of this classic set is sqrt(32/7).
  EXPECT_NEAR(stats::stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, StddevOfSingletonIsZero) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(stats::stddev(xs), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 50.0), 25.0);
}

TEST(Stats, PercentileRejectsBadP) {
  EXPECT_THROW(stats::percentile({1.0}, -1.0), Error);
  EXPECT_THROW(stats::percentile({1.0}, 101.0), Error);
}

TEST(Stats, LinearFitRecoversExactLine) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * x - 1.0);
  const auto fit = stats::linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.correlation, 1.0, 1e-12);
  EXPECT_NEAR(fit(10.0), 24.0, 1e-12);
}

TEST(Stats, LinearFitCorrelationSignMatchesSlope) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{9.0, 6.0, 5.0, 0.0};
  const auto fit = stats::linear_fit(xs, ys);
  EXPECT_LT(fit.slope, 0.0);
  EXPECT_LT(fit.correlation, 0.0);
  EXPECT_GE(fit.correlation, -1.0);
}

TEST(Stats, LinearFitRejectsDegenerateInput) {
  EXPECT_THROW(stats::linear_fit(std::vector<double>{1.0},
                                 std::vector<double>{2.0}),
               Error);
  EXPECT_THROW(stats::linear_fit(std::vector<double>{1.0, 1.0},
                                 std::vector<double>{2.0, 3.0}),
               Error);
}

TEST(Stats, OnlineMatchesBatch) {
  const std::vector<double> xs{1.5, -2.0, 7.25, 0.0, 3.5, 3.5};
  stats::OnlineStats online;
  for (double x : xs) online.add(x);
  EXPECT_EQ(online.count(), xs.size());
  EXPECT_NEAR(online.mean(), stats::mean(xs), 1e-12);
  EXPECT_NEAR(online.stddev(), stats::stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(online.min(), -2.0);
  EXPECT_DOUBLE_EQ(online.max(), 7.25);
}

TEST(Stats, OnlineEmptyIsZero) {
  stats::OnlineStats online;
  EXPECT_EQ(online.count(), 0u);
  EXPECT_DOUBLE_EQ(online.mean(), 0.0);
  EXPECT_DOUBLE_EQ(online.variance(), 0.0);
}

// ------------------------------------------------------------------ rng --

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 9);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(5.0, 2.0), Error);
  EXPECT_THROW(rng.uniform_int(5, 2), Error);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(55);
  Rng child = a.split();
  // The child stream must not mirror the parent from here on.
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == child()) ++equal;
  EXPECT_LT(equal, 3);
}

// -------------------------------------------------------------- strings --

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(strings::trim("  hello\t\n"), "hello");
  EXPECT_EQ(strings::trim(""), "");
  EXPECT_EQ(strings::trim("   "), "");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = strings::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmptyFields) {
  const auto parts = strings::split_ws("  alpha \t beta\ngamma ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "alpha");
  EXPECT_EQ(parts[2], "gamma");
}

TEST(Strings, ParseDoubleAcceptsScientific) {
  EXPECT_DOUBLE_EQ(*strings::parse_double(" 5.3e-3 "), 5.3e-3);
  EXPECT_FALSE(strings::parse_double("5.3x").has_value());
  EXPECT_FALSE(strings::parse_double("").has_value());
}

TEST(Strings, ParseIntRejectsTrailingGarbage) {
  EXPECT_EQ(*strings::parse_int("42"), 42);
  EXPECT_FALSE(strings::parse_int("42.5").has_value());
  EXPECT_FALSE(strings::parse_int("x").has_value());
}

TEST(Strings, JoinAndLower) {
  EXPECT_EQ(strings::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(strings::to_lower("MiXeD"), "mixed");
}

// ---------------------------------------------------------------- table --

TEST(Table, AlignsColumns) {
  Table table("demo");
  table.set_header({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table table;
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table table;
  table.set_header({"a", "b"});
  table.add_row({"x,y", "with \"quote\""});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"with \"\"quote\"\"\""), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(7ll), "7");
}

// ------------------------------------------------------------- argparse --

TEST(ArgParse, ParsesOptionsFlagsAndPositionals) {
  ArgParser parser("prog");
  parser.add_positional("input", "input file");
  parser.add_option("count", "how many", "10");
  parser.add_flag("verbose", "chatty");
  parser.parse({"file.txt", "--count", "5", "--verbose"});
  EXPECT_EQ(parser.get("input"), "file.txt");
  EXPECT_EQ(parser.get_int("count"), 5);
  EXPECT_TRUE(parser.get_flag("verbose"));
}

TEST(ArgParse, EqualsSyntaxAndDefaults) {
  ArgParser parser("prog");
  parser.add_option("rate", "a rate", "1.5");
  parser.parse({"--rate=2.25"});
  EXPECT_DOUBLE_EQ(parser.get_double("rate"), 2.25);

  ArgParser defaults("prog");
  defaults.add_option("rate", "a rate", "1.5");
  defaults.parse({});
  EXPECT_DOUBLE_EQ(defaults.get_double("rate"), 1.5);
}

TEST(ArgParse, RejectsUnknownOptionAndMissingPositional) {
  ArgParser parser("prog");
  parser.add_positional("input", "input file");
  EXPECT_THROW(parser.parse({"--bogus"}), Error);
  ArgParser parser2("prog");
  parser2.add_positional("input", "input file");
  EXPECT_THROW(parser2.parse({}), Error);
}

TEST(ArgParse, FlagRejectsValue) {
  ArgParser parser("prog");
  parser.add_flag("verbose", "chatty");
  EXPECT_THROW(parser.parse({"--verbose=yes"}), Error);
}

// ---------------------------------------------------------- thread pool --

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; }, 4);
}

TEST(ThreadPool, ParallelForSingleThreadIsSequential) {
  std::vector<std::size_t> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// ---------------------------------------------------------------- units --

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(units::mflop_from_flops(2e9), 2000.0);
  EXPECT_DOUBLE_EQ(units::mbit_from_bytes(1e6 / 8.0), 1.0);
}

// ---------------------------------------------------------------- error --

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    ADEPT_CHECK(1 == 2, "math is broken");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

}  // namespace
}  // namespace adept
