#include "planner/shard_cache.hpp"

#include <algorithm>
#include <utility>

// The key is produced by the io layer's canonical serializer — the same
// deliberate .cpp-local upward reference planning_service.cpp makes:
// planner and io ship as one static library (libadept), and a second
// hand-rolled canonical encoding down here would be a drift hazard.
#include "io/wire.hpp"
#include "obs/metrics.hpp"

namespace adept {

namespace detail {

std::string fingerprint_digest(const std::string& canonical) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h1 = 14695981039346656037ull;  // FNV offset basis
  std::uint64_t h2 = 0x9e3779b97f4a7c15ull;    // independent basis
  for (const unsigned char c : canonical) {
    h1 = (h1 ^ c) * kPrime;
    h2 = (h2 ^ (c ^ 0x5bu)) * kPrime;
  }
  std::string key(16, '\0');
  for (int i = 0; i < 8; ++i) {
    key[i] = static_cast<char>(h1 >> (8 * i));
    key[8 + i] = static_cast<char>(h2 >> (8 * i));
  }
  return key;
}

}  // namespace detail

ShardPlanCache::ShardPlanCache(std::size_t capacity) : capacity_(capacity) {}

std::string ShardPlanCache::key(const Platform& shard_platform,
                                const MiddlewareParams& params,
                                const ServiceSpec& service,
                                const PlanOptions& options,
                                const std::string& leaf_planner) {
  // Only the wire-travelling leaf options enter the key — the exact
  // fields the distributed coordinator forwards to a worker, so the
  // local sharded planner and the coordinator address the same entries.
  PlanOptions leaf_options;
  leaf_options.demand = options.demand;
  leaf_options.verbose_trace = options.verbose_trace;
  const PlanRequest leaf(shard_platform, params, service,
                         std::move(leaf_options));
  return detail::fingerprint_digest(
      wire::request_fingerprint(leaf, leaf_planner));
}

std::optional<PlanResult> ShardPlanCache::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) return std::nullopt;
  const auto found = map_.find(key);
  if (found == map_.end()) {
    ++stats_.misses;
    if (c_misses_ != nullptr) c_misses_->inc();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, found->second);
  ++stats_.hits;
  if (c_hits_ != nullptr) c_hits_->inc();
  return found->second->plan;
}

void ShardPlanCache::insert(const std::string& key,
                            const Platform& shard_platform,
                            const PlanResult& plan) {
  std::vector<std::string> names;
  names.reserve(shard_platform.size());
  for (NodeId id = 0; id < shard_platform.size(); ++id)
    names.push_back(shard_platform.node(id).name);
  std::sort(names.begin(), names.end());

  std::uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (capacity_ == 0 || map_.find(key) != map_.end()) return;
    lru_.push_front(Entry{key, std::move(names), plan});
    map_.emplace(key, lru_.begin());
    ++stats_.insertions;
    evicted = evict_to_capacity_locked();
  }
  if (evicted != 0 && c_evictions_ != nullptr) c_evictions_->inc(evicted);
}

std::uint64_t ShardPlanCache::evict_to_capacity_locked() {
  std::uint64_t evicted = 0;
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++evicted;
  }
  stats_.evictions += evicted;
  return evicted;
}

std::size_t ShardPlanCache::invalidate_node(const std::string& node_name) {
  std::size_t erased = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (std::binary_search(it->names.begin(), it->names.end(), node_name)) {
        map_.erase(it->key);
        it = lru_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    stats_.invalidations += erased;
  }
  if (erased != 0 && c_invalidations_ != nullptr)
    c_invalidations_->inc(erased);
  return erased;
}

std::size_t ShardPlanCache::clear() {
  std::size_t erased = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    erased = map_.size();
    lru_.clear();
    map_.clear();
    if (erased != 0) ++stats_.flushes;
  }
  if (erased != 0 && c_flushes_ != nullptr) c_flushes_->inc();
  return erased;
}

void ShardPlanCache::set_capacity(std::size_t capacity) {
  std::uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity;
    evicted = evict_to_capacity_locked();
  }
  if (evicted != 0 && c_evictions_ != nullptr) c_evictions_->inc(evicted);
}

std::size_t ShardPlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

std::size_t ShardPlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

ShardPlanCache::Stats ShardPlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ShardPlanCache::bind_metrics(obs::MetricsRegistry& registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  c_hits_ = &registry.counter("service.shard_cache.hits");
  c_misses_ = &registry.counter("service.shard_cache.misses");
  c_evictions_ = &registry.counter("service.shard_cache.evictions");
  c_invalidations_ = &registry.counter("service.shard_cache.invalidations");
  c_flushes_ = &registry.counter("service.shard_cache.flushes");
}

}  // namespace adept
