/// \file bench_ablation_bandwidth.cpp
/// \brief Ablation: sensitivity of Eq 16 to the homogeneous-link
/// bandwidth B — quantifying when the paper's homogeneous-communication
/// assumption matters. DESIGN.md calls this out because the paper defers
/// heterogeneous communication to future work.

#include "bench_util.hpp"

int main() {
  using namespace adept;
  bench::banner("Ablation — bandwidth sensitivity of the planned deployment");

  const MiddlewareParams params = bench::params();
  const ServiceSpec service = dgemm_service(310);

  Table table("50 homogeneous nodes, heuristic plan per bandwidth");
  table.set_header({"B (Mbit/s)", "rho (req/s)", "nodes used", "depth",
                    "bottleneck", "rho vs B=1000"});
  RequestRate reference = 0.0;
  std::vector<std::pair<MbitRate, RequestRate>> points;
  for (const MbitRate bandwidth : {10.0, 50.0, 100.0, 500.0, 1000.0, 10000.0}) {
    const Platform platform = gen::homogeneous(50, 1000.0, bandwidth);
    const auto plan = bench::run_planner("heuristic", platform, params, service);
    if (bandwidth == 1000.0) reference = plan.report.overall;
    points.emplace_back(bandwidth, plan.report.overall);
    table.add_row(
        {Table::num(bandwidth, 0), Table::num(plan.report.overall, 1),
         Table::num(static_cast<long long>(plan.nodes_used())),
         Table::num(static_cast<long long>(plan.hierarchy.max_depth())),
         model::bottleneck_name(plan.report.bottleneck),
         reference > 0.0 ? Table::num(plan.report.overall / reference, 2)
                         : "-"});
  }
  std::cout << table << '\n';

  bool monotone = true;
  for (std::size_t i = 1; i < points.size(); ++i)
    monotone = monotone && points[i].second >= points[i - 1].second - 1e-9;
  bench::verdict("throughput is monotone in bandwidth", monotone);
  bench::verdict("10x bandwidth above gigabit changes little (compute-bound)",
                 points.back().second < 1.25 * reference);
  return 0;
}
