#pragma once
/// \file hetero_comm.hpp
/// \brief Heterogeneous-communication extension of the throughput model.
///
/// The paper assumes homogeneous links and explicitly defers
/// heterogeneous communication to future work (§4: "We plan to deal with
/// heterogeneous communication in future works"). ADePT implements that
/// extension: every node may carry its own link bandwidth
/// (NodeSpec::link), a parent–child transfer moves at the narrower of the
/// two endpoint links, and the Eq 14/15 terms generalise per edge:
///
///   agent i:   1 / [ (W_req + W_rep(d))/w_i
///                    + S_req/B_par + Σ_c S_rep/B_{i,c}      (receive)
///                    + Σ_c S_req/B_{i,c} + S_rep/B_par ]    (send)
///   server i:  1 / [ W_pre/w_i + (S_req + S_rep)/B_par ]
///   service:   1 / [ (1 + Σ W_pre/W_app)/(Σ w_i/W_app)
///                    + Σ_i f_i · (S_req + S_rep)/B_i ]
///
/// where f_i are the Eq-8 steady-state shares and B_par is the edge to
/// the element's parent (the root's and the servers' client-facing edge
/// is their own link). With all links equal the formulas reduce exactly
/// to the paper's — verified by the test suite.

#include "hierarchy/hierarchy.hpp"
#include "model/evaluate.hpp"

namespace adept::model {

/// Scheduling throughput of one agent element under per-edge bandwidths.
RequestRate agent_sched_throughput_hetero(const Hierarchy& hierarchy,
                                          const Platform& platform,
                                          const MiddlewareParams& params,
                                          Hierarchy::Index agent);

/// Prediction throughput of one server element under per-edge bandwidths.
RequestRate server_sched_throughput_hetero(const Hierarchy& hierarchy,
                                           const Platform& platform,
                                           const MiddlewareParams& params,
                                           Hierarchy::Index server);

/// Eq-15 generalisation: collective service throughput with each server's
/// service-phase messages charged at that server's own link.
RequestRate service_throughput_hetero(const Hierarchy& hierarchy,
                                      const Platform& platform,
                                      const MiddlewareParams& params,
                                      const ServiceSpec& service);

/// Full Eq-16 prediction under heterogeneous links. Identical to
/// evaluate() when Platform::has_homogeneous_links().
ThroughputReport evaluate_hetero(const Hierarchy& hierarchy,
                                 const Platform& platform,
                                 const MiddlewareParams& params,
                                 const ServiceSpec& service);

/// As evaluate_hetero(), but skips structural validation — for planners
/// scoring many candidates they construct themselves (the link-aware
/// hill-climb walks thousands per round).
ThroughputReport evaluate_hetero_unchecked(const Hierarchy& hierarchy,
                                           const Platform& platform,
                                           const MiddlewareParams& params,
                                           const ServiceSpec& service);

}  // namespace adept::model
