/// \file test_dist_socket.cpp
/// \brief The TCP transport: a socket fleet backed by real `adept serve
/// --listen` processes must be bit-identical to the local sharded
/// planner for any session count and endpoint mix, and socket faults —
/// refused connections, mid-response disconnects, dribbling writers,
/// garbage, hangs — must cost workers and retries, never the request.
///
/// Real-process tests spawn the built CLI through dist::ServeListener
/// (ADEPT_CLI_BINARY compile definition); fault tests script a
/// dist_test::FakeTcpServer instead — misbehaviour per accepted
/// connection, no subprocess needed.

#include "dist/transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "dist/coordinator.hpp"
#include "dist/stats.hpp"
#include "dist/worker_pool.hpp"
#include "dist_test_util.hpp"
#include "planning_test_util.hpp"

namespace adept {
namespace {

using test_util::run_planner;
using namespace dist;
using namespace dist_test;

// --------------------------------------------------------- bit-identity --

TEST(DistSocket, SocketFleetMatchesShardedForAnySessionCount) {
  // One warm `adept serve --listen` process; 1, 2 and 5 coordinator
  // sessions against it must all match the local sharded planner bit
  // for bit — and every response must have streamed into the stitch.
  const Platform platform = multi_cluster(160);
  const PlanResult sharded =
      run_planner("sharded", platform, dgemm_service(310));
  ServeListener listener(serve_listen_command(2));
  for (const std::size_t sessions : {1u, 2u, 5u}) {
    reset_stats_for_test();
    SocketTransport transport({listener.endpoint()});
    CoordinatorConfig config;
    config.workers = sessions;
    Coordinator coordinator(transport, config);
    const PlanResult distributed = coordinator.plan(make_request(platform));
    expect_identical(distributed, sharded,
                     std::to_string(sessions) + " socket sessions");
    const DistStats stats = stats_snapshot();
    EXPECT_EQ(stats.socket_connects, sessions);
    EXPECT_EQ(stats.socket_connect_failures, 0u);
    EXPECT_EQ(stats.worker_failures, 0u);
    EXPECT_EQ(stats.fallbacks, 0u);
    EXPECT_GT(stats.streamed, 0u);
  }
}

TEST(DistSocket, EndpointListRoundRobinsAcrossServeProcesses) {
  const Platform platform = multi_cluster(160);
  ServeListener first(serve_listen_command(1));
  ServeListener second(serve_listen_command(1));
  SocketTransport transport({first.endpoint(), second.endpoint()});
  CoordinatorConfig config;
  config.workers = 4;  // two sessions per process
  Coordinator coordinator(transport, config);
  expect_identical(coordinator.plan(make_request(platform)),
                   run_planner("sharded", platform, dgemm_service(310)),
                   "two serve processes, four sessions");
}

// ------------------------------------------------------ fault injection --

TEST(DistSocket, ConnectionRefusedBehavesLikeWorkerLossNotAnError) {
  const Platform platform = multi_cluster(120, 5);
  reset_stats_for_test();
  SocketTransport transport({refused_endpoint()}, 500.0);
  CoordinatorConfig config;
  config.workers = 2;
  Coordinator coordinator(transport, config);
  expect_identical(coordinator.plan(make_request(platform)),
                   run_planner("sharded", platform, dgemm_service(310)),
                   "nobody listening on the endpoint");
  const DistStats stats = stats_snapshot();
  EXPECT_EQ(stats.socket_connects, 0u);
  EXPECT_EQ(stats.socket_connect_failures, 2u);
  EXPECT_GT(stats.fallbacks, 0u);
}

TEST(DistSocket, MidResponseDisconnectFailsTheWorkerNeverTheRequest) {
  const Platform platform = multi_cluster(120, 5);
  FakeTcpServer server([](int fd) {
    std::string request;
    if (!read_line(fd, request)) return;
    // Half a response and a hangup: the unterminated line must read as
    // EOF (a dead worker), never parse.
    write_all(fd, R"({"id":0,"ok":tr)");
  });
  SocketTransport transport({server.endpoint()});
  CoordinatorConfig config;
  config.workers = 2;
  Coordinator coordinator(transport, config);
  expect_identical(coordinator.plan(make_request(platform)),
                   run_planner("sharded", platform, dgemm_service(310)),
                   "disconnect mid-response");
}

TEST(DistSocket, GarbageOverTheSocketFailsTheWorkerNeverTheRequest) {
  const Platform platform = multi_cluster(120, 5);
  FakeTcpServer server([](int fd) {
    std::string request;
    while (read_line(fd, request))
      if (!write_all(fd, "not-json\n")) return;
  });
  SocketTransport transport({server.endpoint()});
  CoordinatorConfig config;
  config.workers = 2;
  Coordinator coordinator(transport, config);
  expect_identical(coordinator.plan(make_request(platform)),
                   run_planner("sharded", platform, dgemm_service(310)),
                   "garbage on the socket");
}

TEST(DistSocket, DribblingWriterCannotRestartTheReceiveTimeout) {
  // One byte every 50 ms never completes a line; the receive deadline
  // is absolute, so partial reads must not extend it — same contract as
  // the pipe transport, now across a socket.
  FakeTcpServer server([](int fd) {
    while (write_all(fd, "x"))
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  SocketTransport transport({server.endpoint()});
  std::unique_ptr<Worker> worker = transport.spawn();
  std::string line;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(worker->receive(line, 300.0));
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed_ms, 250.0);
  EXPECT_LT(elapsed_ms, 10000.0);
}

TEST(DistSocket, HungSocketWorkerCannotOutliveTheCallersDeadline) {
  // The endpoint accepts and reads but never answers; a 400 ms caller
  // deadline must clip the receive timeout and surface the same
  // deadline error the local planner would — not wait out the
  // two-minute shard timeout.
  const Platform platform = multi_cluster(120, 5);
  FakeTcpServer server([](int fd) {
    std::string request;
    while (read_line(fd, request)) {
    }
  });
  SocketTransport transport({server.endpoint()});
  CoordinatorConfig config;
  config.workers = 2;
  Coordinator coordinator(transport, config);
  PlanOptions options;
  options.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(coordinator.plan(make_request(platform, std::move(options))),
               Error);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed_ms, 20000.0);
}

TEST(DistSocket, KilledSocketWorkerReportsDeadNotHung) {
  // kill() must tear the session down (shutdown both directions) so a
  // pending receive fails fast instead of waiting out its timeout.
  FakeTcpServer server([](int fd) {
    std::string request;
    while (read_line(fd, request)) {
    }
  });
  SocketTransport transport({server.endpoint()});
  std::unique_ptr<Worker> worker = transport.spawn();
  EXPECT_TRUE(worker->alive());
  worker->kill();
  EXPECT_FALSE(worker->alive());
  std::string line;
  EXPECT_FALSE(worker->receive(line, 5000.0));
  EXPECT_FALSE(worker->send("{\"cmd\":\"stats\"}"));
}

// ---------------------------------------------------------- serve layer --

TEST(DistSocket, ServeListenerScrapesTheAnnouncedEphemeralPort) {
  ServeListener listener(serve_listen_command(1));
  // "host:port" with a real (non-zero) port, reachable right away.
  const std::string& endpoint = listener.endpoint();
  const auto colon = endpoint.rfind(':');
  ASSERT_NE(colon, std::string::npos);
  EXPECT_GT(std::stoi(endpoint.substr(colon + 1)), 0);
  SocketTransport transport({endpoint});
  std::unique_ptr<Worker> worker = transport.spawn();
  ASSERT_TRUE(worker->send(R"({"cmd":"stats"})"));
  std::string line;
  ASSERT_TRUE(worker->receive(line, 5000.0));
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
}

}  // namespace
}  // namespace adept
